"""Ablations and extensions beyond the paper's reported experiments.

* ``neighborlist`` — the pairlist optimization the paper explicitly
  skipped (section 3.4): how much the Opteron's *functional* kernel
  gains from a Verlet list, measured by examined-pair counts (the cost
  driver on every device).
* ``gpu_reduction`` — the PE-readback trick vs the multi-pass gather
  reduction the paper rejected, priced on the GPU model.
* ``xmt_projection`` — the paper's future work: the MD kernel on
  XMT-class clocks and processor counts.
* ``xmt_network`` — the locality warning of section 3.3.1: the XMT's
  torus memory network as a roofline against a uniform-memory machine.
* ``cache_patterns`` — section 3.4's motivation measured: sequential vs
  random-gather vs sorted-gather position access through the K8 caches.
* ``nextgen_gpu`` — the unified-shader (G80/CUDA) projection the paper
  anticipates ("that number is growing").
* ``load_balance`` — block vs cyclic SPE row partitioning on an
  inhomogeneous (droplet) system, using measured per-row interacting
  counts.
* ``precision`` — single vs double precision force agreement, the
  paper's "outstanding issue" for Cell/GPU adoption.
"""

from __future__ import annotations

import numpy as np

from repro.arch import calibration as cal
from repro.experiments.common import (
    PAPER_STEPS,
    ExperimentResult,
    ShapeCheck,
    paper_config,
    run_device,
)
from repro.gpu import GpuDevice, build_reduction_shader, reduction_pass_count
from repro.gpu.pipelines import PipelineArray
from repro.md import (
    MDConfig,
    compute_forces,
    cubic_lattice,
)
from repro.mta import MTADevice

__all__ = [
    "DESCRIPTIONS",
    "run_neighborlist",
    "run_gpu_reduction",
    "run_xmt_projection",
    "run_xmt_network",
    "run_cache_patterns",
    "run_nextgen_gpu",
    "run_load_balance",
    "run_precision",
]

#: One-line roster descriptions keyed by experiment id
#: (``--list`` / harness job metadata).
DESCRIPTIONS = {
    "abl-nlist": "Three-way force-path ablation: O(N^2) vs Verlet vs cell list",
    "abl-reduce": "PE-in-w readback vs multi-pass gather reduction on the GPU",
    "abl-xmt": "Projection of the kernel onto XMT-class hardware",
    "abl-xmt-net": "XMT network-locality penalty, quantified (section 3.3.1)",
    "abl-cache": "Cache-friendliness of MD access patterns (section 3.4)",
    "abl-nextgen": "Projection onto the unified-shader GPU generation (G80)",
    "abl-balance": "Static block vs cyclic row partitioning across SPEs",
    "abl-precision": "Single vs double precision energy drift on each device",
}


def _own_check(key: str, measured: float, low: float, high: float, desc: str) -> ShapeCheck:
    return ShapeCheck(
        key=key,
        measured=measured,
        low=low,
        high=high,
        paper_value=(low + high) / 2.0,
        description=desc,
    )


def run_neighborlist(
    n_atoms: int = 1024, n_steps: int = 20, skin: float = 0.3
) -> ExperimentResult:
    """Three-way force-path ablation: O(N^2) vs Verlet list vs cell list.

    All three registered backends run the same trajectory; the table
    compares total pair visits, list rebuild/reuse statistics, and the
    final total energy against the all-pairs reference.  A static
    cross-check additionally asserts the cell-list pair search finds
    *exactly* the Verlet list's pairs for the same ``rcut + skin``.
    """
    config = paper_config(n_atoms)
    box = config.make_box()
    potential = config.make_potential()
    from repro.md import MDSimulation, build_pairs_cells
    from repro.md.neighborlist import build_pairs

    reference = MDSimulation(config)  # the paper's all-pairs path
    reference.run(n_steps)
    reference_energy = reference.records[-1].total_energy
    allpairs_examined = (n_steps + 1) * n_atoms * (n_atoms - 1) // 2

    from repro.md import make_force_backend

    runs: dict[str, dict[str, float | int]] = {}
    for name, options in (("verlet", {"skin": skin}), ("cell", {"buffer": skin})):
        lists = make_force_backend(name, box, potential, **options)
        examined = 0

        def counting(positions: np.ndarray, _inner=lists):
            nonlocal examined
            result = _inner(positions)
            examined += result.pairs_examined
            return result

        sim = MDSimulation(config, force_backend=counting)
        sim.run(n_steps)
        runs[name] = {
            "examined": examined,
            "rebuilds": lists.rebuild_count,
            "reuses": lists.reuse_count,
            "energy_err": abs(sim.records[-1].total_energy - reference_energy)
            / abs(reference_energy),
        }

    # Static exactness cross-check at the same radius, same positions.
    probe = reference.state.positions
    verlet_pairs = build_pairs(probe, box, potential.rcut + skin)
    cell_pairs = build_pairs_cells(probe, box, potential.rcut + skin)
    pair_count_gap = abs(verlet_pairs.shape[0] - cell_pairs.shape[0])

    rows = [("all-pairs O(N^2)", allpairs_examined, 1.0, "-", "-")]
    for name, label in (("verlet", "verlet list"), ("cell", "cell list")):
        stats = runs[name]
        rows.append(
            (
                label,
                stats["examined"],
                round(allpairs_examined / stats["examined"], 2),
                stats["rebuilds"],
                stats["reuses"],
            )
        )
    reuse_note = ", ".join(
        f"{name}: {runs[name]['rebuilds']} rebuilds / {runs[name]['reuses']} reuses "
        f"({100.0 * runs[name]['reuses'] / max(1, runs[name]['rebuilds'] + runs[name]['reuses']):.0f}% reused)"
        for name in ("verlet", "cell")
    )
    checks = (
        _own_check(
            "abl_nlist_reduction",
            allpairs_examined / runs["verlet"]["examined"],
            3.0,
            200.0,
            "pair-visit reduction from the Verlet list",
        ),
        _own_check(
            "abl_nlist_energy",
            runs["verlet"]["energy_err"],
            0.0,
            1e-8,
            "verlet-list relative total-energy deviation vs all-pairs",
        ),
        _own_check(
            "abl_nlist_cell_energy",
            runs["cell"]["energy_err"],
            0.0,
            1e-8,
            "cell-list relative total-energy deviation vs all-pairs",
        ),
        _own_check(
            "abl_nlist_cell_pairs_exact",
            float(pair_count_gap),
            0.0,
            0.0,
            "cell-list vs verlet-list pair-count gap at the same radius",
        ),
    )
    return ExperimentResult(
        experiment_id="abl-nlist",
        title=f"Pairlist ablation ({n_atoms} atoms, {n_steps} steps, "
        f"skin {skin})",
        headers=("kernel", "pairs_examined", "reduction", "rebuilds", "reuses"),
        rows=tuple(rows),
        checks=checks,
        notes=(
            "The paper deliberately skips this optimization; the ratio "
            "shows what the O(N^2) formulation pays for it.",
            f"list reuse — {reuse_note}",
            "The cell list finds the identical pair set in O(N) build "
            "time; build_pairs is the O(N^2) blocked scan.",
        ),
    )


def run_gpu_reduction(n_atoms: int = 2048) -> ExperimentResult:
    """PE-in-w readback vs multi-pass gather reduction on the GPU."""
    pipelines = PipelineArray()
    fanin = 4
    shader = build_reduction_shader(fanin)
    passes = reduction_pass_count(n_atoms, fanin)
    reduction_seconds = 0.0
    remaining = n_atoms
    per_pass_overhead = cal.GPU_STEP_OVERHEAD_S  # each pass is a full dispatch
    import math

    for _ in range(passes):
        remaining = math.ceil(remaining / fanin)
        metrics = {"elements": float(remaining)}
        reduction_seconds += (
            pipelines.execute_seconds(shader, metrics) + per_pass_overhead
        )
    # The PE-in-w trick: the readback already moves 4-component vectors,
    # so the PE column is free; the host sums it in linear time.
    host_sum_seconds = 10.0 * n_atoms / cal.OPTERON_CLOCK_HZ

    rows = (
        ("PE in 4th component + host sum", 0, round(host_sum_seconds * 1e6, 2)),
        (f"{passes}-pass gather reduction (fanin {fanin})", passes,
         round(reduction_seconds * 1e6, 2)),
    )
    overhead_ratio = reduction_seconds / host_sum_seconds
    checks = (
        _own_check(
            "abl_gpu_reduction_overhead",
            overhead_ratio,
            10.0,
            1e7,
            "multi-pass reduction cost vs free readback (x)",
        ),
    )
    return ExperimentResult(
        experiment_id="abl-reduce",
        title=f"GPU PE accumulation strategies ({n_atoms} atoms, per step)",
        headers=("strategy", "extra_passes", "time_us"),
        rows=rows,
        checks=checks,
        notes=(
            '"this method introduces significant overheads" — quantified.',
        ),
    )


def run_xmt_projection(n_atoms: int = 2048, n_steps: int = 2) -> ExperimentResult:
    """The paper's future work: project the kernel onto XMT-class hardware."""
    rows = []
    seconds: dict[str, float] = {}
    cases = (
        ("MTA-2, 1 processor", 1, cal.MTA_CLOCK_HZ),
        ("XMT, 1 processor", 1, cal.XMT_CLOCK_HZ),
        ("XMT, 8 processors", 8, cal.XMT_CLOCK_HZ),
        ("XMT, 64 processors", 64, cal.XMT_CLOCK_HZ),
    )
    for label, procs, hz in cases:
        device = MTADevice(fully_multithreaded=True, n_processors=procs, clock_hz=hz)
        _res, sec = run_device(device, n_atoms, n_steps, normalize_steps=PAPER_STEPS)
        seconds[label] = sec
        rows.append((label, round(sec, 4)))

    clock_gain = seconds["MTA-2, 1 processor"] / seconds["XMT, 1 processor"]
    # Saturation caps multi-processor scaling: P processors need
    # 128 * P concurrent threads, and the force loop offers N of them.
    measured_scaling = seconds["XMT, 8 processors"] / seconds["XMT, 64 processors"]
    cap8 = min(8.0 * cal.MTA_N_STREAMS, float(n_atoms)) / cal.MTA_N_STREAMS
    cap64 = min(64.0 * cal.MTA_N_STREAMS, float(n_atoms)) / cal.MTA_N_STREAMS
    expected = min(cap64, 64.0) / min(cap8, 8.0)
    checks = (
        _own_check(
            "abl_xmt_clock_gain",
            clock_gain,
            2.2,
            2.8,
            "XMT clock-rate gain over MTA-2 (500 vs 200 MHz)",
        ),
        _own_check(
            "abl_xmt_scaling",
            measured_scaling,
            0.75 * expected,
            1.1 * expected,
            f"8->64 processor force-loop scaling (saturation cap {expected:.2g}x)",
        ),
    )
    return ExperimentResult(
        experiment_id="abl-xmt",
        title=f"XMT projection ({n_atoms} atoms, 10 steps) — "
        '"we anticipate significant performance gains from the upcoming '
        'XMT technology"',
        headers=("system", "runtime_s"),
        rows=tuple(rows),
        checks=checks,
        notes=(
            "Multi-processor scaling assumes the N-thread force loop "
            "keeps all processors saturated (N >= 128 * P).",
        ),
    )


def run_xmt_network(
    n_atoms: int = 262144,
    processors: tuple[int, ...] = (64, 512, 1024, 2048),
) -> ExperimentResult:
    """The locality warning of section 3.3.1, quantified.

    Projects a large bio-molecular workload onto XMT partitions with the
    3D-torus memory network vs a hypothetical uniform-memory machine.
    The interacting fraction is measured at a feasible size (it is
    density-determined, so intensive); the per-pair instruction stream
    is exact.  Beyond the network's bisection crossover the torus
    machine stops scaling — "data placement and access locality will be
    an important consideration when programming these systems".
    """
    from repro.md import compute_forces as _cf
    from repro.mta.xmt import XMTDevice

    probe_config = MDConfig(n_atoms=1024)
    probe_box = probe_config.make_box()
    probe = _cf(
        cubic_lattice(probe_config.n_atoms, probe_box),
        probe_box,
        probe_config.make_potential(),
    )
    fraction = 2.0 * probe.interacting_pairs / (1024 * 1023)
    box_length = MDConfig(n_atoms=n_atoms).make_box().length

    rows = []
    efficiencies = []
    for p in processors:
        torus = XMTDevice(n_processors=p)
        flat = XMTDevice(n_processors=p, uniform_memory=True)
        torus_s = sum(
            torus.projected_step_seconds(n_atoms, fraction, box_length).values()
        )
        flat_s = sum(
            flat.projected_step_seconds(n_atoms, fraction, box_length).values()
        )
        efficiency = flat_s / torus_s
        efficiencies.append(efficiency)
        rows.append(
            (p, round(flat_s, 4), round(torus_s, 4), round(efficiency, 3))
        )

    checks = (
        _own_check(
            "abl_xmt_net_small_p_efficient",
            efficiencies[0],
            0.95,
            1.001,
            f"torus efficiency at P={processors[0]} (below bisection crossover)",
        ),
        _own_check(
            "abl_xmt_net_large_p_bound",
            efficiencies[-1],
            0.0,
            0.8,
            f"torus efficiency at P={processors[-1]} (network-bound; the\n"
            "paper's 8000-processor regime would be thread-limited for this\n"
            "workload before the network even matters)",
        ),
    )
    return ExperimentResult(
        experiment_id="abl-xmt-net",
        title=f"XMT torus-network roofline, projected {n_atoms}-atom workload "
        "(per time step)",
        headers=("processors", "uniform_s", "torus_s", "efficiency"),
        rows=tuple(rows),
        checks=checks,
        notes=(
            "Projection from the exact kernel instruction stream + the "
            "measured interacting fraction; no functional run at this N.",
        ),
    )


def run_nextgen_gpu(
    atom_counts: tuple[int, ...] = (256, 1024, 2048),
    n_steps: int = 2,
) -> ExperimentResult:
    """Projection onto the unified-shader generation (G80/CUDA).

    The paper: "the parallelism is increasing; the next generation from
    NVIDIA contained 24 pipelines, and that number is growing" — and its
    conclusions ask for "a standard programming interface".  This
    ablation runs the same workload on the streaming 7900GTX model and
    the CUDA-class projection (shared-memory tiling, on-chip reduction)
    to quantify what the programming-model change buys.
    """
    from repro.experiments.common import normalized_total
    from repro.gpu.nextgen import NextGenGpuDevice

    rows = []
    gains = []
    for n in atom_counts:
        config = MDConfig(n_atoms=n)
        old = GpuDevice().run(config, n_steps)
        new = NextGenGpuDevice().run(config, n_steps)
        old_s = normalized_total(old, PAPER_STEPS)
        new_s = normalized_total(new, PAPER_STEPS)
        gains.append(old_s / new_s)
        rows.append((n, round(old_s, 4), round(new_s, 4), round(old_s / new_s, 2)))

    checks = (
        _own_check(
            "abl_nextgen_speedup_2048",
            gains[-1],
            3.0,
            12.0,
            f"G80-class gain over the 7900GTX model at {atom_counts[-1]} atoms",
        ),
        _own_check(
            "abl_nextgen_gain_grows",
            1.0 if all(b >= a * 0.95 for a, b in zip(gains, gains[1:])) else 0.0,
            1.0,
            1.0,
            "the unified-shader advantage grows with system size",
        ),
    )
    return ExperimentResult(
        experiment_id="abl-nextgen",
        title="Streaming (7900GTX) vs CUDA-class (G80) GPU projection "
        "(10-step totals)",
        headers=("atoms", "g71_s", "g80_s", "gain"),
        rows=tuple(rows),
        checks=checks,
        notes=(
            "Same arithmetic stream; only the memory/programming model "
            "differs — shared-memory tiling amortizes the per-pair fetch "
            "and scatter enables the on-chip reduction.",
        ),
    )


def run_cache_patterns(n_atoms: int = 8192) -> ExperimentResult:
    """Section 3.4's motivation, measured: "the MD simulations do not
    exhibit a cache friendly memory access pattern ... multiple accesses
    to the position arrays in a random manner is required".

    Three position-array access patterns go through the Opteron's cache
    hierarchy: the paper's all-pairs sequential scan, a neighbor-list
    gather in random order, and the same gather with spatially-sorted
    indices.  Random gather is the pattern real pairlist MD produces —
    and the one the MTA's uniform-latency memory shrugs off.
    """
    from repro.arch import calibration as c
    from repro.md import NeighborList
    from repro.opteron.costmodel import make_opteron_hierarchy

    config = MDConfig(n_atoms=n_atoms)
    box = config.make_box()
    potential = config.make_potential()
    positions = cubic_lattice(n_atoms, box)
    nlist = NeighborList(box, potential, skin=0.3)
    nlist.update(positions)
    rng = np.random.default_rng(config.seed)

    element = c.VEC3_F64_BYTES

    def atom_addresses(order: np.ndarray) -> np.ndarray:
        return np.asarray(order, dtype=np.int64) * element

    sequential = atom_addresses(np.arange(n_atoms))
    gather_targets = nlist.pairs[:, 1]
    shuffled_pairs = rng.permutation(len(gather_targets))
    random_gather = atom_addresses(gather_targets[shuffled_pairs])
    sorted_gather = atom_addresses(np.sort(gather_targets))

    rows = []
    miss_rates: dict[str, float] = {}
    stalls: dict[str, float] = {}
    for label, trace in (
        ("sequential all-pairs scan", sequential),
        ("neighbor-list gather, random order", random_gather),
        ("neighbor-list gather, sorted", sorted_gather),
    ):
        hierarchy = make_opteron_hierarchy()
        hierarchy.access(trace)  # warm
        hierarchy.reset_stats()
        stall = hierarchy.access(trace)
        l1 = hierarchy.stats()["L1"]
        miss_rates[label] = l1.miss_rate
        stalls[label] = stall / trace.size
        rows.append(
            (
                label,
                trace.size,
                round(l1.miss_rate, 4),
                round(stall / trace.size, 3),
            )
        )

    checks = (
        _own_check(
            "abl_cache_sorting_helps",
            miss_rates["neighbor-list gather, sorted"]
            / max(1e-12, miss_rates["neighbor-list gather, random order"]),
            0.0,
            0.9,
            "sorted gather misses vs random gather (x)",
        ),
        _own_check(
            "abl_cache_random_stall_dominates",
            stalls["neighbor-list gather, random order"]
            / max(1e-12, stalls["neighbor-list gather, sorted"]),
            5.0,
            1e6,
            "random-gather stall vs locality-sorted gather (x)",
        ),
    )
    return ExperimentResult(
        experiment_id="abl-cache",
        title=f"Position-array access patterns through the K8 caches "
        f"({n_atoms} atoms)",
        headers=("pattern", "accesses", "L1_miss_rate", "stall_cyc_per_access"),
        rows=tuple(rows),
        checks=checks,
        notes=(
            "The MTA-2 model charges none of these stalls — its whole "
            "architectural bet (section 3.3).",
        ),
    )


def run_load_balance(n_atoms: int = 1024, n_spes: int = 8) -> ExperimentResult:
    """Static block vs cyclic row partitioning across SPEs.

    The paper assigns each SPE a contiguous block of rows ("each SPE
    checks approximately one eighth of the total number (N^2) of atom
    pairs") — fine for its homogeneous liquid.  This ablation builds an
    inhomogeneous system (all atoms condensed into one octant of the
    box, a droplet) and measures what the block layout costs when local
    density varies: the step ends when the slowest SPE does.
    """
    from repro.cell.kernels import build_spe_kernel
    from repro.cell.partition import RowPartition, partitioned_kernel_seconds

    config = MDConfig(n_atoms=n_atoms)
    box = config.make_box()
    potential = config.make_potential()

    # droplet: lattice compressed into one octant, rows ordered by
    # position so a block partition concentrates the dense region
    droplet_box_positions = 0.5 * cubic_lattice(n_atoms, box)
    order = np.lexsort(droplet_box_positions.T)
    droplet = droplet_box_positions[order]
    result = compute_forces(droplet, box, potential)
    assert result.row_interacting is not None

    program = build_spe_kernel("simd_acceleration", box.length)
    rows = []
    timings = {}
    for strategy in (RowPartition.BLOCK, RowPartition.CYCLIC):
        timing = partitioned_kernel_seconds(
            program,
            result.row_interacting,
            n_spes=n_spes,
            strategy=strategy,
            clock_hz=cal.SPE_CLOCK_HZ,
        )
        timings[strategy] = timing
        rows.append(
            (
                strategy.value,
                round(timing.step_seconds * 1e3, 3),
                round(timing.mean_seconds * 1e3, 3),
                f"{100 * timing.imbalance:.1f}%",
            )
        )

    block = timings[RowPartition.BLOCK]
    cyclic = timings[RowPartition.CYCLIC]
    checks = (
        _own_check(
            "abl_balance_cyclic_wins",
            block.step_seconds / cyclic.step_seconds,
            1.005,
            2.0,
            "block-partition step time vs cyclic on the droplet (x)",
        ),
        _own_check(
            "abl_balance_cyclic_flat",
            cyclic.imbalance,
            0.0,
            0.02,
            "cyclic partition residual imbalance",
        ),
    )
    return ExperimentResult(
        experiment_id="abl-balance",
        title=f"SPE row-partition load balance on a droplet "
        f"({n_atoms} atoms, {n_spes} SPEs, per force evaluation)",
        headers=("partition", "step_ms (max SPE)", "mean_ms", "imbalance"),
        rows=tuple(rows),
        checks=checks,
        notes=(
            "The effect is small even on a droplet: the all-pairs kernel "
            "spends most of its per-pair cost on the distance check, which "
            "is density-independent — the quantitative reason the paper "
            "could ignore load balance entirely.",
        ),
    )


def run_precision(n_atoms: int = 512) -> ExperimentResult:
    """Single vs double precision force agreement (the 'outstanding issue')."""
    config = MDConfig(n_atoms=n_atoms)
    box = config.make_box()
    potential = config.make_potential()
    # Perturb the lattice: on a perfect lattice every force cancels by
    # symmetry and a relative error metric is meaningless.
    rng = np.random.default_rng(config.seed)
    positions = box.wrap(
        cubic_lattice(n_atoms, box) + rng.normal(0.0, 0.05, size=(n_atoms, 3))
    )
    f32 = compute_forces(positions, box, potential, dtype=np.float32)
    f64 = compute_forces(positions, box, potential, dtype=np.float64)
    scale = float(np.max(np.abs(f64.accelerations))) or 1.0
    max_err = float(np.max(np.abs(f32.accelerations - f64.accelerations))) / scale
    pe_err = abs(f32.potential_energy - f64.potential_energy) / abs(
        f64.potential_energy
    )
    rows = (
        ("max |dF| / max |F|", f"{max_err:.3e}"),
        ("relative |dPE|", f"{pe_err:.3e}"),
        ("float32 PE", f"{f32.potential_energy:.6f}"),
        ("float64 PE", f"{f64.potential_energy:.6f}"),
    )
    checks = (
        _own_check(
            "abl_precision_force",
            max_err,
            0.0,
            1e-4,
            "float32 force error vs float64 (relative)",
        ),
        _own_check(
            "abl_precision_pe",
            pe_err,
            0.0,
            1e-4,
            "float32 PE error vs float64 (relative)",
        ),
    )
    return ExperimentResult(
        experiment_id="abl-precision",
        title=f"Single- vs double-precision force evaluation ({n_atoms} atoms)",
        headers=("quantity", "value"),
        rows=rows,
        checks=checks,
        notes=(
            "Cell/GPU run float32 in the paper; Opteron/MTA run float64 "
            "(section 3.5).  Forces agree to ~1e-6 relative on this "
            "workload — adequate for the paper's 10-step comparisons.",
        ),
    )
