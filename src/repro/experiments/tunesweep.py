"""The tuning-target sweep: gpu/mta/vm workloads under tuned configs.

This experiment is the roster anchor for the autotuner's accelerator
scenarios (``tunesweep-gpu``, ``tunesweep-mta``, ``tunesweep-vm`` in
:mod:`repro.tune.probe`): a tuned artifact persisted for
``experiment_id="tunesweep"`` auto-loads onto this job's runs, and its
knob values reach the workloads ambiently through
:mod:`repro.tune.context` — exactly the path a production run takes.

Untuned, every workload runs at its backend defaults; tuned, the run
record's ``tuned`` entry names the applied config and the cache key
changes with it, so tuned and untuned results never alias.  The rows
report throughput per workload plus which tuned knobs were active, and
the checks are wide positivity bands — the *strict* tuned-vs-default
gate lives in ``scripts/record_bench.py --tune`` (``BENCH_tune.json``),
where both sides are measured back to back.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, ShapeCheck

__all__ = ["DESCRIPTION", "run"]

#: One-line roster description (``--list`` / harness job metadata).
DESCRIPTION = "gpu/mta/vm tuning-target sweep under the active tuned config"

#: The probe scenarios this experiment re-runs as its workloads.
_SCENARIO_IDS = ("tunesweep-gpu", "tunesweep-mta", "tunesweep-vm")


def run(quick: bool = False, repeats: int = 2) -> ExperimentResult:
    """Run each tuning-target workload once under the ambient config."""
    from repro.tune.context import active_values
    from repro.tune.probe import _WORKLOADS, scenario_for

    applied = active_values()
    rows = []
    checks = []
    for scenario_id in _SCENARIO_IDS:
        scenario = scenario_for(scenario_id)
        per_second, seconds, accuracy = _WORKLOADS[scenario_id](
            scenario, quick, repeats
        )
        active = sorted(
            name for name in applied
            if name.startswith(f"{scenario.device}/")
        )
        rows.append(
            (
                scenario_id,
                scenario.device,
                scenario.size(quick),
                scenario.metric,
                per_second,
                seconds,
                accuracy,
                ",".join(active) or "(defaults)",
            )
        )
        checks.append(
            ShapeCheck(
                key=f"tunesweep.{scenario.device}.positive",
                measured=per_second,
                low=0.0,
                high=1e18,  # finite so the JSON record stays standard
                paper_value=0.0,
                description=(
                    f"{scenario.device} workload throughput is finite and "
                    "positive under the active tuned config"
                ),
            )
        )
    return ExperimentResult(
        experiment_id="tunesweep",
        title="tuning-target sweep (gpu / mta / vm)",
        headers=(
            "scenario", "device", "n", "metric", "per_second",
            "best_seconds", "accuracy", "tuned_knobs",
        ),
        rows=tuple(rows),
        checks=tuple(checks),
        notes=(
            f"{len(applied)} tuned knob value(s) ambiently active",
            "strict tuned>=default gate: scripts/record_bench.py --tune",
        ),
    )
