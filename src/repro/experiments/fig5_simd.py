"""Figure 5 — SIMD optimization ladder of the SPE acceleration kernel.

"Figure 5 shows the runtime of the acceleration computation function
for 2048 atoms, when running on a single SPE, across various SIMD
optimizations."  This experiment runs the MD workload once per
optimization level on a 1-SPE Cell device and reports the simulated
runtime of the acceleration kernel alone (the ``spe_kernel`` component),
then checks every prose claim about the ladder.
"""

from __future__ import annotations

from repro.cell import OPT_LEVELS, CellDevice
from repro.experiments.common import (
    PAPER_STEPS,
    ExperimentResult,
    check_band,
    paper_config,
)
from repro.experiments.paperdata import FIG5_CUMULATIVE_SPEEDUP

__all__ = ["DESCRIPTION", "run"]

#: One-line roster description (``--list`` / harness job metadata).
DESCRIPTION = "SIMD optimization ladder of the SPE acceleration kernel (Fig 5)"

_STEP_BAND_KEYS = {
    "copysign": "fig5_copysign_gain",
    "simd_direction": "fig5_direction_gain",
    "simd_length": "fig5_length_gain",
    "simd_acceleration": "fig5_acceleration_gain",
}


def run(n_atoms: int = 2048, n_steps: int = PAPER_STEPS) -> ExperimentResult:
    config = paper_config(n_atoms)
    kernel_seconds: dict[str, float] = {}
    for level in OPT_LEVELS:
        device = CellDevice(n_spes=1, opt_level=level)
        result = device.run(config, n_steps)
        kernel_seconds[level] = result.component("spe_kernel")

    original = kernel_seconds["original"]
    rows = []
    for level in OPT_LEVELS:
        seconds = kernel_seconds[level]
        rows.append(
            (
                level,
                round(seconds, 4),
                round(original / seconds, 3),
                FIG5_CUMULATIVE_SPEEDUP[level],
            )
        )

    checks = [
        check_band(
            "fig5_copysign_gain",
            kernel_seconds["original"] / kernel_seconds["copysign"],
        ),
        check_band(
            "fig5_reflection_cumulative",
            kernel_seconds["original"] / kernel_seconds["simd_reflection"],
        ),
        check_band(
            "fig5_direction_gain",
            kernel_seconds["simd_reflection"] / kernel_seconds["simd_direction"],
        ),
        check_band(
            "fig5_length_gain",
            kernel_seconds["simd_direction"] / kernel_seconds["simd_length"],
        ),
        check_band(
            "fig5_acceleration_gain",
            kernel_seconds["simd_length"] / kernel_seconds["simd_acceleration"],
        ),
    ]
    return ExperimentResult(
        experiment_id="fig5",
        title=f"SPE SIMD optimization ladder ({n_atoms} atoms, 1 SPE, "
        f"{n_steps} steps, acceleration kernel only)",
        headers=("level", "kernel_s", "cumulative_speedup", "paper_cumulative"),
        rows=tuple(rows),
        checks=tuple(checks),
        notes=(
            "Runtimes are simulated SPE cycles from the scheduled "
            "instruction streams of the six kernel variants.",
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
