"""Experiment modules: one per paper table/figure, plus ablations."""

from repro.experiments.common import (
    PAPER_STEPS,
    ExperimentResult,
    ShapeCheck,
    check_band,
    paper_config,
    run_device,
)
from repro.experiments.paperdata import (
    FIG5_CUMULATIVE_SPEEDUP,
    PAPER_ATOM_COUNTS,
    SHAPE_BANDS,
    TABLE1_PAPER_SECONDS,
    Band,
)

__all__ = [
    "Band",
    "ExperimentResult",
    "FIG5_CUMULATIVE_SPEEDUP",
    "PAPER_ATOM_COUNTS",
    "PAPER_STEPS",
    "SHAPE_BANDS",
    "ShapeCheck",
    "TABLE1_PAPER_SECONDS",
    "check_band",
    "paper_config",
    "run_device",
]
