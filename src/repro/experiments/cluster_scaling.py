"""Strong-scaling sweep of the simulated cluster — the beyond-one-device
extrapolation the paper's single-device tables stop short of.

A fixed workload is decomposed across K ∈ {1, 2, 4, 8} simulated nodes
(each node one of the paper's device models) and priced through the
node-to-node link model (:mod:`repro.arch.interconnect`).  Three
contracts are certified alongside the timing table:

* **equivalence** — every K-way run reproduces the K = 1 run's final
  dynamical state bit-for-bit (same dtype/seed), the property the
  cluster test net enforces exhaustively;
* **conservation** — one traced run per device passes the
  ghost-exchange conservation audit
  (:func:`repro.obs.invariants.cluster_conservation_problems`);
* **scaling shape** — decomposing helps: the largest node count beats
  one node, and exchange traffic appears exactly when K > 1.

Speedups can exceed K: the decomposed kernel scans owned × local pairs,
and the halo import is a shrinking fraction of the box as K grows, so
each node prunes distance evaluations the monolithic all-pairs kernel
pays for.  The bands below are therefore generous on the high side —
superlinearity is a property of the pruning, not an accounting bug
(the conservation audit is the accounting check).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.experiments.common import ExperimentResult, ShapeCheck, paper_config
from repro.obs.invariants import cluster_conservation_problems
from repro.obs.observe import Observation

__all__ = ["DESCRIPTION", "run"]

#: One-line roster description (``--list`` / harness job metadata).
DESCRIPTION = (
    "strong-scaling over a simulated cluster: K-node slab decomposition "
    "per device model, bit-identical to K=1"
)


def run(
    n_atoms: int = 2048,
    n_steps: int = 4,
    node_counts: Sequence[int] = (1, 2, 4, 8),
    devices: Iterable[str] = ("cell", "gpu"),
    topology: str = "switch",
) -> ExperimentResult:
    """Fixed-size scaling table: one row per (device, K).

    Every device's K = 1 cluster run is the speedup baseline *and* the
    bit-identity reference for its decomposed runs.
    """
    from repro.cluster.machine import SimulatedCluster

    node_counts = tuple(int(k) for k in node_counts)
    if not node_counts or node_counts[0] != 1:
        raise ValueError(
            f"node_counts must start with the K=1 baseline, got {node_counts}"
        )
    config = paper_config(n_atoms)

    rows = []
    all_identical = True
    min_kmax_speedup = float("inf")
    exchange_shape_ok = True
    conservation_problems: list[str] = []
    for device in devices:
        reference_digest = None
        for k in node_counts:
            cluster = SimulatedCluster(
                device=device, n_nodes=k, topology=topology
            )
            # Trace one run per (device, K): the conservation audit
            # needs the cluster.* counter deltas alongside the ledger.
            obs = Observation(device=cluster.name)
            result = cluster.run(config, n_steps, observe=obs)
            conservation_problems.extend(
                cluster_conservation_problems(result.counters, result)
            )
            digest = result.state_digest()
            if k == 1:
                reference_digest = digest
                baseline_sps = result.seconds_per_step
            all_identical = all_identical and (digest == reference_digest)
            speedup = baseline_sps / result.seconds_per_step
            if k == max(node_counts):
                min_kmax_speedup = min(min_kmax_speedup, speedup)
            exchange_shape_ok = exchange_shape_ok and (
                (result.exchange_bytes > 0) == (k > 1)
            )
            rows.append(
                (
                    device,
                    k,
                    round(result.seconds_per_step, 9),
                    round(speedup, 4),
                    result.exchange_bytes,
                    result.ghost_atoms // max(1, n_steps),
                    round(
                        sum(e.hidden_seconds for e in result.ledger), 9
                    ),
                )
            )

    kmax = max(node_counts)
    checks = (
        ShapeCheck(
            key="cluster_equivalence",
            measured=1.0 if all_identical else 0.0,
            low=1.0,
            high=1.0,
            paper_value=1.0,
            description="every K-way state digest equals the K=1 digest "
            "(bit-identical decomposition on every device)",
        ),
        ShapeCheck(
            key="cluster_conservation",
            measured=float(len(conservation_problems)),
            low=0.0,
            high=0.0,
            paper_value=0.0,
            description="ghost-exchange conservation audit problems across "
            "all traced runs (must be zero)",
        ),
        ShapeCheck(
            key="cluster_kmax_speedup",
            measured=min_kmax_speedup,
            # Decomposing must help at paper scale; halo pruning makes
            # superlinear speedups legitimate, hence the wide top of the
            # band.  Below ~1k atoms fixed per-step costs (launch, DMA
            # setup) dominate every device — the same regime as the
            # paper's GPU crossover — so the quick variant only demands
            # that decomposition is not a catastrophic loss.
            low=1.0 + 1e-9 if n_atoms >= 1024 else 0.9,
            high=1.0e3,
            paper_value=float(kmax),
            description=f"min over devices of the K={kmax} speedup vs one "
            "node (superlinear is expected from halo pruning; "
            "overhead-dominated below 1024 atoms)",
        ),
        ShapeCheck(
            key="cluster_exchange_shape",
            measured=1.0 if exchange_shape_ok else 0.0,
            low=1.0,
            high=1.0,
            paper_value=1.0,
            description="fabric traffic appears exactly when K > 1 "
            "(zero bytes at K=1, nonzero beyond)",
        ),
    )
    return ExperimentResult(
        experiment_id="cluster",
        title=(
            f"cluster strong scaling ({n_atoms} atoms, {n_steps} steps, "
            f"{topology} fabric, K in {node_counts})"
        ),
        headers=(
            "device",
            "nodes",
            "seconds_per_step",
            "speedup_vs_one_node",
            "exchange_bytes",
            "ghost_atoms_per_step",
            "hidden_exchange_s",
        ),
        rows=tuple(rows),
        checks=checks,
        notes=(
            "Physics is bit-identical across node counts by construction; "
            "only the pricing (compute overlap + fabric exchange) varies.",
            "Speedup is measured against the same device's K=1 cluster "
            "run, which matches the plain device trajectory.",
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
