"""Figure 6 — SPE thread-launch overhead: respawn-per-step vs launch-once.

"Figure 6 shows the total runtime of the whole program, and the
percentage which is devoted to launching SPE threads" for {1, 8} SPEs
under both launch strategies.  The checks encode the prose: respawning
caps the 8-SPE speedup near 1.5x; amortizing the launch restores ~4.5x.

The ratios are properties of the paper's 2048-atom, 10-step workload;
``n_steps`` only controls how many steps run functionally — simulated
times are always normalized to the 10-step convention.
"""

from __future__ import annotations

from repro.cell import CellDevice, LaunchStrategy
from repro.experiments.common import (
    PAPER_STEPS,
    ExperimentResult,
    check_band,
    normalized_component,
    normalized_total,
    paper_config,
)

__all__ = ["DESCRIPTION", "run"]

#: One-line roster description (``--list`` / harness job metadata).
DESCRIPTION = "Thread launch-per-step vs launch-once overhead on the MTA (Fig 6)"


def run(n_atoms: int = 2048, n_steps: int = PAPER_STEPS) -> ExperimentResult:
    config = paper_config(n_atoms)
    cases = [
        ("respawn every time step", LaunchStrategy.RESPAWN_PER_STEP, 1),
        ("respawn every time step", LaunchStrategy.RESPAWN_PER_STEP, 8),
        ("launch only first time step", LaunchStrategy.LAUNCH_ONCE, 1),
        ("launch only first time step", LaunchStrategy.LAUNCH_ONCE, 8),
    ]
    totals: dict[tuple[str, int], float] = {}
    rows = []
    for label, strategy, n_spes in cases:
        device = CellDevice(n_spes=n_spes, strategy=strategy)
        result = device.run(config, n_steps)
        total = normalized_total(result, PAPER_STEPS)
        launch = normalized_component(result, "thread_launch", PAPER_STEPS)
        totals[(strategy.value, n_spes)] = total
        rows.append(
            (
                label,
                f"{n_spes} SPE" + ("s" if n_spes > 1 else ""),
                round(total, 4),
                round(launch, 4),
                f"{100.0 * launch / total:.1f}%",
            )
        )

    respawn_ratio = (
        totals[(LaunchStrategy.RESPAWN_PER_STEP.value, 1)]
        / totals[(LaunchStrategy.RESPAWN_PER_STEP.value, 8)]
    )
    amortized_ratio = (
        totals[(LaunchStrategy.LAUNCH_ONCE.value, 1)]
        / totals[(LaunchStrategy.LAUNCH_ONCE.value, 8)]
    )
    checks = [
        check_band("fig6_respawn_8v1", respawn_ratio),
        check_band("fig6_amortized_8v1", amortized_ratio),
    ]
    return ExperimentResult(
        experiment_id="fig6",
        title=f"SPE launch overhead ({n_atoms} atoms, normalized to "
        f"{PAPER_STEPS} steps)",
        headers=("strategy", "spes", "total_s", "launch_s", "launch_share"),
        rows=tuple(rows),
        checks=tuple(checks),
        notes=(
            "Launch-once amortizes thread creation across all steps via "
            "mailbox signalling, as in the paper's fix.",
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
