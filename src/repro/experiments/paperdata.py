"""The paper's reference numbers and shape targets, in one place.

Absolute seconds in the source text of Table 1 are garbled ("Opteron
sec" with the values missing), so the reference column is
*reconstructed* from the ratios the prose states explicitly:

* "even a single SPE just edges out the Opteron" — 1 SPE slightly
  faster than the Opteron;
* "using all 8 SPEs results in a better than 5x performance
  improvement relative to the Opteron, and 26x faster than the PPE
  alone";
* "this eight-SPE version is now 4.5x faster than this single-SPE
  version";
* respawn-per-step makes "even an efficient parallelization run only
  about 1.5x faster using all SPEs" (Figure 6);
* Figure 5's ladder: copysign = "a small speedup"; + SIMD reflection =
  "over 1.5x faster than the original"; + SIMD direction = 21%;
  + SIMD length = 15%; + SIMD acceleration = 3%;
* Figure 7: GPU loses "at very small numbers of atoms", wins "almost
  6x" at 2048;
* Figure 8: fully multithreaded beats partially multithreaded and "the
  performance difference increases with the ... number of atoms";
* Figure 9: both normalized curves start at 1 (256 atoms); the Opteron
  curve rises faster than pure-flops growth, the MTA's tracks it.

The anchor Opteron time (4.1 s, 2048 atoms, 10 steps) is read off
Figure 7's 2048-atom Opteron point.
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "Band",
    "TABLE1_PAPER_SECONDS",
    "FIG5_CUMULATIVE_SPEEDUP",
    "SHAPE_BANDS",
    "PAPER_ATOM_COUNTS",
]

#: Atom counts used across the sweeps (Figures 7-9 x-axes; the paper's
#: figures run from a few hundred to a few thousand atoms).
PAPER_ATOM_COUNTS = (128, 256, 512, 1024, 2048, 4096, 8192)


@dataclasses.dataclass(frozen=True)
class Band:
    """An acceptance band for a measured ratio."""

    low: float
    high: float
    paper_value: float
    description: str

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


#: Table 1, reconstructed (seconds; 2048 atoms, 10 time steps).
TABLE1_PAPER_SECONDS = {
    "Opteron": 4.10,
    "Cell, 1 SPE": 3.75,
    "Cell, 8 SPEs": 0.79,
    "Cell, PPE only": 20.5,
}

#: Figure 5's cumulative speedups over the original, per prose.
FIG5_CUMULATIVE_SPEEDUP = {
    "original": 1.0,
    "copysign": 1.05,
    "simd_reflection": 1.55,
    "simd_direction": 1.88,
    "simd_length": 2.16,
    "simd_acceleration": 2.22,
}

#: Shape-acceptance bands asserted by the benchmark suite.  Bands are
#: deliberately generous: the substrate is a simulator, the paper asks
#: for who-wins / rough factors / crossovers, not absolute seconds.
SHAPE_BANDS: dict[str, Band] = {
    "fig5_copysign_gain": Band(1.01, 1.20, 1.05, "copysign step speedup"),
    "fig5_reflection_cumulative": Band(
        1.40, 2.20, 1.55, "cumulative speedup after SIMD reflection"
    ),
    "fig5_direction_gain": Band(1.10, 1.35, 1.21, "SIMD direction step"),
    "fig5_length_gain": Band(1.05, 1.30, 1.15, "SIMD length step"),
    "fig5_acceleration_gain": Band(1.001, 1.08, 1.03, "SIMD acceleration step"),
    "fig6_respawn_8v1": Band(1.2, 1.8, 1.5, "8 vs 1 SPE, respawn per step"),
    "fig6_amortized_8v1": Band(3.8, 5.8, 4.5, "8 vs 1 SPE, launch once"),
    "table1_1spe_vs_opteron": Band(
        1.0, 1.8, 1.09, "1 SPE vs Opteron ('just edges out')"
    ),
    "table1_8spe_vs_opteron": Band(4.8, 9.0, 5.2, "8 SPEs vs Opteron (>5x)"),
    "table1_ppe_vs_8spe": Band(18.0, 36.0, 26.0, "PPE-only vs 8 SPEs"),
    "fig7_gpu_speedup_2048": Band(4.5, 7.5, 5.9, "GPU vs Opteron at 2048 atoms"),
    "fig7_crossover_atoms": Band(64, 512, 200, "GPU/CPU crossover location"),
    "fig8_partial_vs_full": Band(10.0, 25.0, 21.0, "partial vs full MT slowdown"),
    # The MTA's normalized growth tracks the floating-point work: the
    # examined-pair count exactly, minus the slight thinning of the
    # interacting fraction at larger N (also present in the paper's
    # kernel, whose per-pair force work is data-dependent).
    "fig9_mta_excess_8192": Band(
        0.85, 1.02, 1.0, "MTA growth tracks the flops requirement at 8192 atoms"
    ),
    # The Opteron's curve must end visibly above the MTA's once the
    # position array outgrows L1 (the cache-miss effect of Figure 9).
    # Our mechanistic cache model yields a smaller divergence than the
    # paper's figure suggests (~2-5% vs what looks like 10-20%); the
    # band accepts the mechanism, EXPERIMENTS.md records the delta.
    "fig9_opteron_vs_mta_8192": Band(
        1.01, 1.30, 1.15, "Opteron normalized growth over MTA's at 8192 atoms"
    ),
    # Before the cache knee the two normalized curves coincide.
    "fig9_pre_knee_agreement": Band(
        0.93, 1.07, 1.0, "Opteron/MTA normalized growth agreement below the knee"
    ),
}
