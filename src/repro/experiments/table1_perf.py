"""Table 1 — total-runtime comparison at 2048 atoms, 10 time steps.

Rows: Opteron, Cell 1 SPE, Cell 8 SPEs, Cell PPE-only.  The paper's
absolute seconds are garbled in the source text, so the reference
column is the reconstruction documented in
:mod:`repro.experiments.paperdata`; the checks assert the ratios the
prose states explicitly.
"""

from __future__ import annotations

from repro.cell import CellDevice, PPEOnlyDevice
from repro.experiments.common import (
    PAPER_STEPS,
    ExperimentResult,
    check_band,
    normalized_total,
    paper_config,
)
from repro.experiments.paperdata import TABLE1_PAPER_SECONDS
from repro.opteron import OpteronDevice

__all__ = ["DESCRIPTION", "run"]

#: One-line roster description (``--list`` / harness job metadata).
DESCRIPTION = "Cross-device 2048-atom runtime comparison (Table 1)"


def run(n_atoms: int = 2048, n_steps: int = PAPER_STEPS) -> ExperimentResult:
    config = paper_config(n_atoms)
    devices = {
        "Opteron": OpteronDevice(),
        "Cell, 1 SPE": CellDevice(n_spes=1),
        "Cell, 8 SPEs": CellDevice(n_spes=8),
        "Cell, PPE only": PPEOnlyDevice(),
    }
    seconds: dict[str, float] = {}
    rows = []
    for label, device in devices.items():
        result = device.run(config, n_steps)
        seconds[label] = normalized_total(result, PAPER_STEPS)
        rows.append(
            (
                label,
                round(seconds[label], 4),
                TABLE1_PAPER_SECONDS[label],
            )
        )

    checks = [
        check_band(
            "table1_1spe_vs_opteron", seconds["Opteron"] / seconds["Cell, 1 SPE"]
        ),
        check_band(
            "table1_8spe_vs_opteron", seconds["Opteron"] / seconds["Cell, 8 SPEs"]
        ),
        check_band(
            "table1_ppe_vs_8spe",
            seconds["Cell, PPE only"] / seconds["Cell, 8 SPEs"],
        ),
    ]
    return ExperimentResult(
        experiment_id="table1",
        title=f"Performance comparison of MD calculations "
        f"({n_atoms} atoms, normalized to {PAPER_STEPS} steps)",
        headers=("system", "measured_s", "paper_s (reconstructed)"),
        rows=tuple(rows),
        checks=tuple(checks),
        notes=(
            "Paper seconds reconstructed from stated ratios; see "
            "repro/experiments/paperdata.py.",
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
