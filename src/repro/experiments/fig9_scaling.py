"""Figure 9 — runtime growth relative to the 256-atom run, MTA vs Opteron.

"We observe that the runtime on the Opteron processor increases at a
relatively faster rate by increasing the number of atoms ... the effect
of cache misses are shown in the Opteron processor runs as the array
sizes become larger than the cache capacities ...  The increases in the
MTA runtime, on the other hand, are proportional to the increase in the
floating-point computation requirements."

The *excess* columns divide each normalized runtime by the pure-flops
growth of the examined-pair count, so 1.0 means "proportional to the
computation" — the MTA sits there by construction of the architecture,
the Opteron departs once the position array outgrows its L1.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    PAPER_STEPS,
    ExperimentResult,
    ShapeCheck,
    check_band,
    run_device,
)
from repro.experiments.paperdata import PAPER_ATOM_COUNTS
from repro.mta import MTADevice
from repro.opteron import OpteronDevice
from repro.reporting import ascii_plot

__all__ = ["DESCRIPTION", "run"]

#: One-line roster description (``--list`` / harness job metadata).
DESCRIPTION = "MTA vs Opteron O(N^2) scaling ratios from a 256-atom base (Fig 9)"

_BASE_ATOMS = 256


def run(
    atom_counts: Sequence[int] = PAPER_ATOM_COUNTS[1:],
    n_steps: int = 2,
    force_path: str = "all-pairs",
) -> ExperimentResult:
    """The fig9 sweep; ``force_path`` picks the functional force engine.

    The simulated MTA/Opteron timings price the paper's O(N^2) kernel
    either way — ``force_path="cell"`` only swaps the *functional*
    engine so the sweep's host wall-clock stays O(N) at large N.
    """
    if atom_counts[0] != _BASE_ATOMS:
        raise ValueError(f"the sweep must start at {_BASE_ATOMS} atoms")
    mta_seconds: list[float] = []
    opt_seconds: list[float] = []
    for n in atom_counts:
        _mres, msec = run_device(
            MTADevice(fully_multithreaded=True, force_path=force_path),
            n,
            n_steps,
            normalize_steps=PAPER_STEPS,
        )
        _ores, osec = run_device(
            OpteronDevice(force_path=force_path), n, n_steps, normalize_steps=PAPER_STEPS
        )
        mta_seconds.append(msec)
        opt_seconds.append(osec)

    def flops_growth(n: int) -> float:
        return (n * (n - 1)) / (_BASE_ATOMS * (_BASE_ATOMS - 1))

    rows = []
    mta_ratio: list[float] = []
    opt_ratio: list[float] = []
    for i, n in enumerate(atom_counts):
        mr = mta_seconds[i] / mta_seconds[0]
        orr = opt_seconds[i] / opt_seconds[0]
        mta_ratio.append(mr)
        opt_ratio.append(orr)
        growth = flops_growth(n)
        rows.append(
            (
                n,
                round(mr, 2),
                round(orr, 2),
                round(growth, 2),
                round(mr / growth, 4),
                round(orr / growth, 4),
            )
        )

    top = len(atom_counts) - 1
    #: The L1 capacity knee: 64 KB / 24 B per atom ~ 2731 atoms.
    knee_atoms = 2731
    checks = [
        check_band(
            "fig9_mta_excess_8192", mta_ratio[top] / flops_growth(atom_counts[top])
        ),
    ]
    if atom_counts[top] >= 4096:
        checks.append(
            check_band("fig9_opteron_vs_mta_8192", opt_ratio[top] / mta_ratio[top])
        )
    # Below the knee the two normalized curves must coincide.
    pre_knee = [
        o / m
        for n, o, m in zip(atom_counts, opt_ratio, mta_ratio)
        if n <= knee_atoms
    ]
    if pre_knee:
        checks.append(check_band("fig9_pre_knee_agreement", max(pre_knee)))
    plot = ascii_plot(
        {
            "MTA": list(zip(atom_counts, mta_ratio)),
            "Opteron": list(zip(atom_counts, opt_ratio)),
        },
        logx=True,
        logy=True,
        title="Figure 9: runtime increase relative to 256 atoms",
    )
    return ExperimentResult(
        experiment_id="fig9",
        title="Increase in runtime with respect to the 256-atom run",
        headers=(
            "atoms",
            "mta_ratio",
            "opteron_ratio",
            "flops_growth",
            "mta_excess",
            "opteron_excess",
        ),
        rows=tuple(rows),
        checks=tuple(checks),
        plot=plot,
        notes=(
            "Opteron excess >1 appears at the L1 capacity knee (~2731 "
            "atoms for a 64 KB L1 and 24-byte positions); the MTA has no "
            "caches to overflow.",
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
