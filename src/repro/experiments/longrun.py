"""Long-running resumable MD job — the service's durability workload.

Runs the paper's LJ liquid for ``n_steps`` and persists a
step-granular :class:`repro.faults.checkpoint.Checkpoint` to
``checkpoint_path`` every ``checkpoint_interval`` steps (atomic
write-then-rename, JSON-native, bit-exact on reload).  If the file
already exists at startup the run *resumes* from it instead of starting
over — which is exactly what happens when the service's scheduler
retries a job whose worker process was killed mid-run: the retry picks
up at the last checkpoint and the final state is bit-identical to an
uninterrupted run.

``crash_at_step`` is the deliberate fault hook behind that guarantee's
test: on a fresh (non-resumed) run it SIGKILLs the hosting process the
moment the step counter reaches it — after the scheduled checkpoints
below it were written, exactly like a real OOM-kill.  Only ever pass it
to a job running in a disposable worker process (the harness scheduler
with ``max_workers >= 1``); inline it would kill the caller.

Without ``checkpoint_path`` the experiment is just a longer MD run with
energy-conservation shape checks — every front-end can run it; only the
service wires the persistence in (keyed by the job's cache key).
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import uuid
from pathlib import Path

import numpy as np

from repro.experiments.common import ExperimentResult, ShapeCheck
from repro.faults.checkpoint import Checkpoint
from repro.md.simulation import MDConfig, MDSimulation

__all__ = ["DESCRIPTION", "run"]

#: One-line roster description (``--list`` / harness job metadata).
DESCRIPTION = (
    "long-running resumable MD job: persisted step-granular checkpoints, "
    "bit-identical resume after a worker kill"
)


def _write_checkpoint(path: Path, checkpoint: Checkpoint) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}-{uuid.uuid4().hex[:8]}.tmp")
    tmp.write_text(
        json.dumps(checkpoint.to_dict(), sort_keys=True) + "\n"
    )
    tmp.replace(path)


def _load_checkpoint(path: Path) -> Checkpoint | None:
    try:
        return Checkpoint.from_dict(json.loads(path.read_text()))
    except (OSError, json.JSONDecodeError, KeyError, ValueError):
        # A torn or foreign file restarts the run instead of crashing it.
        return None


def run(
    n_atoms: int = 256,
    n_steps: int = 24,
    checkpoint_interval: int = 5,
    checkpoint_path: str | None = None,
    crash_at_step: int | None = None,
) -> ExperimentResult:
    """Run (or resume) the long job; see the module docstring."""
    if n_steps < 1:
        raise ValueError("n_steps must be >= 1")
    if checkpoint_interval < 1:
        raise ValueError("checkpoint_interval must be >= 1")

    sim = MDSimulation(MDConfig(n_atoms=n_atoms))
    path = Path(checkpoint_path) if checkpoint_path else None
    resumed_from: int | None = None
    if path is not None and path.exists():
        checkpoint = _load_checkpoint(path)
        if checkpoint is not None and 0 < checkpoint.step <= n_steps:
            sim.restore(checkpoint)
            resumed_from = checkpoint.step

    checkpoints_written = 0
    while sim.step_count < n_steps:
        sim.step()
        if path is not None and sim.step_count % checkpoint_interval == 0:
            _write_checkpoint(path, sim.snapshot())
            checkpoints_written += 1
        if (
            crash_at_step is not None
            and resumed_from is None
            and sim.step_count >= crash_at_step
        ):
            # The deliberate mid-run kill: no cleanup, no flush — the
            # process dies exactly as hard as a real OOM-kill would.
            os.kill(os.getpid(), signal.SIGKILL)

    drift = sim.energy_drift()
    final = sim.state.positions
    digest = hashlib.sha256(np.ascontiguousarray(final).tobytes()).hexdigest()
    finite = bool(np.all(np.isfinite(final)))

    checks = (
        ShapeCheck(
            key="longrun_completed",
            measured=float(sim.step_count) / float(n_steps),
            low=1.0,
            high=1.0,
            paper_value=1.0,
            description=f"all {n_steps} steps completed (resume included)",
        ),
        ShapeCheck(
            key="longrun_energy_drift",
            measured=drift,
            low=0.0,
            high=0.02,
            paper_value=0.0,
            description="relative total-energy drift stays small over the "
            "long run (velocity Verlet conserves energy)",
        ),
        ShapeCheck(
            key="longrun_finite",
            measured=1.0 if finite else 0.0,
            low=1.0,
            high=1.0,
            paper_value=1.0,
            description="final dynamical state is finite",
        ),
    )
    mode = (
        f"resumed from step {resumed_from}" if resumed_from is not None
        else "fresh"
    )
    return ExperimentResult(
        experiment_id="longrun",
        title=(
            f"resumable long job ({n_atoms} atoms, {n_steps} steps, "
            f"checkpoint every {checkpoint_interval}, {mode})"
        ),
        headers=("quantity", "value"),
        rows=(
            ("steps_completed", sim.step_count),
            ("resumed_from_step", -1 if resumed_from is None else resumed_from),
            ("checkpoints_written", checkpoints_written),
            ("energy_drift", drift),
            ("final_total_energy", float(sim.records[-1].total_energy)),
            ("final_positions_sha256", digest),
        ),
        checks=checks,
        notes=(
            "final_positions_sha256 is the bit-identity witness: a "
            "crashed-and-resumed run must reproduce the uninterrupted "
            "run's digest exactly.",
            "checkpoints persist under the job's content-addressed cache "
            "key when run through repro.service.",
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
