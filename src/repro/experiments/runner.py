"""Run every experiment and render a combined report.

``python -m repro.experiments.runner [--quick]`` regenerates every
table and figure of the paper plus the ablations, printing the measured
values, the paper references, and the pass/fail of every shape check.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import (
    ablations,
    fig5_simd,
    fig6_launch,
    fig7_gpu,
    fig8_mta,
    fig9_scaling,
    table1_perf,
)
from repro.experiments.common import ExperimentResult

__all__ = ["all_experiments", "main"]


def all_experiments(
    quick: bool = False,
    force_path: str = "all-pairs",
) -> list[tuple[str, Callable[[], ExperimentResult]]]:
    """(experiment id, factory) roster; ``quick`` shrinks the sweeps.

    ``force_path`` selects the functional force engine (a
    :mod:`repro.md.forcefield` registry name) for the fig9 scaling
    sweep — the experiment whose host wall-clock the O(N) cell list
    actually unlocks at large N.
    """
    if quick:
        sweep = (256, 512, 1024)
        return [
            ("fig5", lambda: fig5_simd.run(n_atoms=512, n_steps=3)),
            # fig6/table1 assert 2048-atom ratios; run 2 functional steps
            # and let the harness normalize to the 10-step convention.
            ("fig6", lambda: fig6_launch.run(n_atoms=2048, n_steps=2)),
            ("table1", lambda: table1_perf.run(n_atoms=2048, n_steps=2)),
            ("fig7", lambda: fig7_gpu.run(atom_counts=sweep, n_steps=2)),
            ("fig8", lambda: fig8_mta.run(atom_counts=sweep, n_steps=2)),
            (
                "fig9",
                lambda: fig9_scaling.run(
                    atom_counts=sweep, n_steps=2, force_path=force_path
                ),
            ),
            (
                "abl-nlist",
                lambda: ablations.run_neighborlist(n_atoms=512, n_steps=10),
            ),
            ("abl-reduce", lambda: ablations.run_gpu_reduction(n_atoms=512)),
            (
                "abl-xmt",
                lambda: ablations.run_xmt_projection(n_atoms=512, n_steps=2),
            ),
            ("abl-xmt-net", ablations.run_xmt_network),
            ("abl-cache", lambda: ablations.run_cache_patterns(n_atoms=4096)),
            (
                "abl-nextgen",
                lambda: ablations.run_nextgen_gpu(atom_counts=(256, 1024)),
            ),
            ("abl-balance", lambda: ablations.run_load_balance(n_atoms=512)),
            ("abl-precision", lambda: ablations.run_precision(n_atoms=256)),
        ]
    return [
        ("fig5", fig5_simd.run),
        ("fig6", fig6_launch.run),
        ("table1", table1_perf.run),
        ("fig7", fig7_gpu.run),
        ("fig8", fig8_mta.run),
        ("fig9", lambda: fig9_scaling.run(force_path=force_path)),
        ("abl-nlist", ablations.run_neighborlist),
        ("abl-reduce", ablations.run_gpu_reduction),
        ("abl-xmt", ablations.run_xmt_projection),
        ("abl-xmt-net", ablations.run_xmt_network),
        ("abl-cache", ablations.run_cache_patterns),
        ("abl-nextgen", ablations.run_nextgen_gpu),
        ("abl-balance", ablations.run_load_balance),
        ("abl-precision", ablations.run_precision),
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small systems, short sweeps"
    )
    parser.add_argument(
        "--only", default=None, help="run a single experiment id (e.g. fig7)"
    )
    parser.add_argument(
        "--skip",
        action="append",
        default=[],
        metavar="ID",
        help="skip an experiment id (repeatable)",
    )
    from repro.md.forcefield import available_backends

    parser.add_argument(
        "--force-path",
        default="all-pairs",
        choices=available_backends(),
        help="functional force engine for the fig9 sweep",
    )
    args = parser.parse_args(argv)

    roster = all_experiments(quick=args.quick, force_path=args.force_path)
    known = {eid for eid, _factory in roster}
    for skipped in args.skip:
        if skipped not in known:
            parser.error(f"unknown experiment id {skipped!r}")
    if args.only:
        if args.only not in known:
            parser.error(f"unknown experiment id {args.only!r}")
        roster = [(eid, factory) for eid, factory in roster if eid == args.only]
    roster = [(eid, factory) for eid, factory in roster if eid not in args.skip]
    failures = 0
    for _eid, factory in roster:
        result = factory()
        print(result.render())
        print()
        if not result.all_passed:
            failures += 1
    if failures:
        print(f"{failures} experiment(s) outside their paper-shape bands")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
