"""Run every experiment and render a combined report.

``python -m repro.experiments.runner [--quick]`` regenerates every
table and figure of the paper plus the ablations, printing the measured
values, the paper references, and the pass/fail of every shape check.

This module is a thin compatibility shim over :mod:`repro.harness`:
the roster lives in :mod:`repro.experiments.registry` and execution
goes through :func:`repro.harness.api.run_roster` (inline, uncached,
ephemeral — no ``runs/`` artifacts).  That buys crash isolation for
free: an exception in one experiment is reported with its traceback
and the rest of the roster still runs.  For parallel execution, the
result cache, and stored run artifacts, use ``python -m repro.harness``.
"""

from __future__ import annotations

import argparse
import json
import sys
from functools import partial
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.experiments.common import ExperimentResult

__all__ = ["all_experiments", "main"]

#: Where ``--trace`` drops its Chrome trace-event artifacts.
DEFAULT_TRACE_DIR = Path("runs") / "traces"


def all_experiments(
    quick: bool = False,
    force_path: str = "all-pairs",
) -> list[tuple[str, Callable[[], ExperimentResult]]]:
    """(experiment id, factory) roster; ``quick`` shrinks the sweeps.

    Back-compat view of :data:`repro.experiments.registry.EXPERIMENTS`;
    ``force_path`` selects the functional force engine (a
    :mod:`repro.md.forcefield` registry name) for the fig9 scaling
    sweep — the experiment whose host wall-clock the O(N) cell list
    actually unlocks at large N.
    """
    from repro.experiments.registry import EXPERIMENTS

    return [
        (
            spec.experiment_id,
            partial(spec.resolve(), **spec.params(quick=quick, force_path=force_path)),
        )
        for spec in EXPERIMENTS
    ]


def _print_record(
    record: Mapping[str, Any],
    show_counters: bool = False,
    trace_dir: Path | None = None,
) -> None:
    if record["status"] == "ok":
        print(ExperimentResult.from_dict(record["result"]).render())
        if show_counters:
            counters = record["result"].get("counters") or {}
            if counters:
                width = max(len(name) for name in counters)
                print("hardware counters:")
                for name in sorted(counters):
                    print(f"  {name:<{width}}  {counters[name]:.6g}")
        if trace_dir is not None and record.get("trace"):
            from repro.reporting import ascii_timeline

            trace_dir.mkdir(parents=True, exist_ok=True)
            path = trace_dir / f"{record['experiment_id']}.trace.json"
            path.write_text(
                json.dumps(record["trace"], indent=2, sort_keys=True) + "\n"
            )
            print(ascii_timeline(record["trace"]), end="")
            print(f"trace: {path}  (load in chrome://tracing or ui.perfetto.dev)")
    else:
        print(f"[ERROR] {record['experiment_id']}: experiment {record['status']}")
        if record.get("traceback"):
            print(record["traceback"].rstrip())
    print()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small systems, short sweeps"
    )
    parser.add_argument(
        "--only", default=None, help="run a single experiment id (e.g. fig7)"
    )
    parser.add_argument(
        "--skip",
        action="append",
        default=[],
        metavar="ID",
        help="skip an experiment id (repeatable)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list experiment ids and descriptions, then exit",
    )
    from repro.md.forcefield import available_backends

    parser.add_argument(
        "--force-path",
        default="all-pairs",
        choices=available_backends(),
        help="functional force engine for the fig9 sweep",
    )
    from repro.vm.machine import EXEC_BACKENDS, EXEC_ENV_VAR

    parser.add_argument(
        "--vm-exec",
        default=None,
        choices=EXEC_BACKENDS,
        help="VM execution backend for every device model (sets "
        f"{EXEC_ENV_VAR}; default: drivers pick 'compiled')",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="PLAN",
        help="fault plan for the chaos experiment: 'storm', 'none', or a "
        "path to a JSON plan file (applies to experiments that accept one)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="R",
        help="replica count for the ensemble experiment (overrides the "
        "roster default; applies to experiments that accept one)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="observe every experiment, print an ASCII timeline, and write "
        f"Chrome trace-event JSON under {DEFAULT_TRACE_DIR}/",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help=f"directory for --trace artifacts (default: {DEFAULT_TRACE_DIR})",
    )
    parser.add_argument(
        "--counters",
        action="store_true",
        help="observe every experiment and print its hardware-counter summary",
    )
    parser.add_argument(
        "--tuned",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="auto-load tuned configs from runs/tuned/ (default on; "
        "--no-tuned runs everything at backend defaults)",
    )
    args = parser.parse_args(argv)

    if args.replicas is not None and args.replicas < 1:
        parser.error("--replicas must be >= 1")

    fault_plan = None
    if args.fault_plan is not None:
        from repro.faults import load_plan_arg

        try:
            fault_plan = load_plan_arg(args.fault_plan).to_dict()
        except ValueError as exc:
            parser.error(str(exc))

    if args.vm_exec:
        import os

        os.environ[EXEC_ENV_VAR] = args.vm_exec

    if args.list:
        from repro.harness.cli import print_roster

        print_roster()
        return 0

    from repro.harness import api

    observe = args.trace or args.counters
    try:
        jobs = api.jobs_from_registry(
            quick=args.quick,
            force_path=args.force_path,
            fault_plan=fault_plan,
            replicas=args.replicas,
            only=[args.only] if args.only else None,
            skip=args.skip,
            observe=observe,
        )
    except KeyError as exc:
        parser.error(exc.args[0])

    if args.tuned:
        jobs = api.attach_tuned(jobs, quick=args.quick)

    trace_dir = None
    if args.trace:
        trace_dir = Path(args.trace_dir) if args.trace_dir else DEFAULT_TRACE_DIR

    outcome = api.run_roster(
        jobs,
        store=None,  # ephemeral: no runs/ artifacts, no cache
        max_workers=0,  # inline, roster order, monkeypatch-friendly
        use_cache=False,
        on_record=partial(
            _print_record, show_counters=args.counters, trace_dir=trace_dir
        ),
    )
    failures = outcome.failures
    if failures:
        crashed = outcome.manifest["not_ok_count"]
        if crashed:
            print(f"{crashed} experiment(s) raised instead of completing")
        band = outcome.manifest["band_failure_count"]
        if band:
            print(f"{band} experiment(s) outside their paper-shape bands")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
