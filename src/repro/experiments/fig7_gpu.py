"""Figure 7 — GPU vs Opteron runtime across atom counts.

"There is a startup cost associated with the GPU implementation ...
it is not included in these results.  However, there are other constant
and O(N) costs associated with each time step on the GPU, and these
costs are included" — reproduced by the device model's accounting
(per-step PCIe + driver costs in, one-time JIT out).  The checks assert
the crossover at small N and the ~6x win at 2048 atoms.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    PAPER_STEPS,
    ExperimentResult,
    check_band,
    run_device,
)
from repro.experiments.paperdata import PAPER_ATOM_COUNTS
from repro.gpu import GpuDevice
from repro.opteron import OpteronDevice
from repro.reporting import ascii_plot

__all__ = ["DESCRIPTION", "run"]

#: One-line roster description (``--list`` / harness job metadata).
DESCRIPTION = "GPU vs Opteron runtime across atom counts, with crossover (Fig 7)"


def run(
    atom_counts: Sequence[int] = PAPER_ATOM_COUNTS,
    n_steps: int = 3,
) -> ExperimentResult:
    """Sweep system sizes; functional steps = ``n_steps``, times are
    normalized to the paper's 10-step convention."""
    gpu_seconds: list[float] = []
    cpu_seconds: list[float] = []
    rows = []
    for n in atom_counts:
        _gres, gsec = run_device(GpuDevice(), n, n_steps, normalize_steps=PAPER_STEPS)
        _ores, osec = run_device(
            OpteronDevice(), n, n_steps, normalize_steps=PAPER_STEPS
        )
        gpu_seconds.append(gsec)
        cpu_seconds.append(osec)
        rows.append((n, round(osec, 4), round(gsec, 4), round(osec / gsec, 3)))

    # crossover: smallest N where the GPU wins (geometric midpoint of the
    # bracketing sizes when it flips between sweep points)
    crossover = None
    for i, n in enumerate(atom_counts):
        if cpu_seconds[i] > gpu_seconds[i]:
            if i == 0:
                crossover = float(n)
            else:
                crossover = (atom_counts[i - 1] * n) ** 0.5
            break
    if crossover is None:
        crossover = float(atom_counts[-1]) * 2  # GPU never won: fails the band

    checks = []
    if 2048 in atom_counts:
        idx = list(atom_counts).index(2048)
        checks.append(
            check_band("fig7_gpu_speedup_2048", cpu_seconds[idx] / gpu_seconds[idx])
        )
    checks.append(check_band("fig7_crossover_atoms", crossover))

    plot = ascii_plot(
        {
            "Opteron": list(zip(atom_counts, cpu_seconds)),
            "NVIDIA GPU": list(zip(atom_counts, gpu_seconds)),
        },
        logx=True,
        logy=True,
        title="Figure 7: runtime (s, 10 steps) vs number of atoms",
    )
    return ExperimentResult(
        experiment_id="fig7",
        title="Performance results on GPU vs Opteron",
        headers=("atoms", "opteron_s", "gpu_s", "gpu_speedup"),
        rows=tuple(rows),
        checks=tuple(checks),
        plot=plot,
        notes=(
            "GPU one-time setup excluded, per-step PCIe/driver costs "
            "included, exactly as the paper accounts them.",
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
