"""Batched multi-replica ensemble through the fused VM backend.

Ensemble methods (replica exchange, independent-seed sampling) run R
copies of the same kernel over different state.  The fused backend
stacks the R replicas along the VM's batch axis and executes the whole
timestep — every force segment plus integration — as *one* compiled
closure per step, where the PR-3 compiled backend loops replica by
replica with a per-segment dispatch each.

The experiment certifies the three claims that make that optimization
safe to use:

* **throughput** — fused-batched execution beats compiled-sequential on
  replicas-per-second (the strict ≥2x-at-R≥8 gate lives in
  ``scripts/record_bench.py --ensemble --check`` / ``BENCH_vm2.json``;
  the roster check uses a looser band so a loaded CI box cannot flake
  the whole run),
* **bit-identity** — a batched run of R replicas produces, replica by
  replica, exactly the outputs of R sequential runs, under every
  execution backend,
* **counter additivity** — branch statistics and replica-step counters
  from the batched run merge to exactly the sequential totals, so
  observability never depends on how work was batched.
"""

from __future__ import annotations

import numpy as np

from repro.cell.kernels import build_spe_timestep_kernel, timestep_constants
from repro.experiments.common import ExperimentResult, ShapeCheck
from repro.md.lj import LennardJones
from repro.obs.counters import CounterSet
from repro.vm.bench import (
    BOX_LENGTH,
    bench_ensemble,
    ensemble_speedups,
    timestep_env,
)
from repro.vm.machine import Machine

__all__ = ["DESCRIPTION", "run"]

#: One-line roster description (``--list`` / harness job metadata).
DESCRIPTION = "batched replica ensemble: fused-VM throughput, bit-identity, counters"

#: Every execution backend the differential sweep compares.
_BACKENDS = ("interp", "compiled", "fused")


def _replica_ladder(replicas: int) -> tuple[int, ...]:
    """1, 2, 4, ... up to (and always including) ``replicas``."""
    ladder = []
    r = 1
    while r < replicas:
        ladder.append(r)
        r *= 2
    ladder.append(replicas)
    return tuple(ladder)


def _vm_counters(machine: Machine) -> CounterSet:
    """The machine's accumulated state as additive ``vm.*`` counters."""
    counters = CounterSet()
    counters.add("vm.programs", machine.programs_run)
    counters.add("vm.replicas", machine.replicas_run)
    for key, stat in machine.branch_stats.items():
        counters.add(f"vm.branch.{key}.samples", stat.count)
        counters.add(f"vm.branch.{key}.taken_mass", stat.total)
    return counters


def run(n_rows: int = 256, replicas: int = 8, repeats: int = 3) -> ExperimentResult:
    """Throughput ladder + differential net at ``replicas`` replicas.

    ``n_rows`` is the dimer-pair batch per replica; the workload is the
    whole SPE timestep program (fully SIMDized force + integration).
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    program = build_spe_timestep_kernel("simd_acceleration", BOX_LENGTH)
    constants = timestep_constants(LennardJones(), dt=0.005)
    ladder = _replica_ladder(replicas)

    # -- throughput ladder ----------------------------------------------
    bench = bench_ensemble(
        replica_counts=ladder, rows_per_replica=n_rows, repeats=repeats
    )
    by_key = {(b.replicas, b.mode): b for b in bench}
    ratios = ensemble_speedups(bench)
    rows = []
    for r in ladder:
        seq = by_key[(r, "compiled-sequential")]
        fused = by_key[(r, "fused-batched")]
        rows.append((
            r,
            n_rows,
            round(seq.best_seconds * 1e3, 4),
            round(fused.best_seconds * 1e3, 4),
            round(seq.replicas_per_second, 1),
            round(fused.replicas_per_second, 1),
            round(ratios[r], 3),
        ))

    # -- differential net: batched vs sequential, all backends ----------
    batch = replicas * n_rows
    reference = Machine(width=4, dtype=np.float32, exec_backend="fused")
    base_env = timestep_env(reference, batch, constants)
    fused_out = reference.run_program(program, dict(base_env), replicas=replicas)
    batched_counters = _vm_counters(reference)

    max_deviation = 0.0
    for backend in _BACKENDS:
        machine = Machine(width=4, dtype=np.float32, exec_backend=backend)
        for index in range(replicas):
            sub = {
                name: reg[index * n_rows : (index + 1) * n_rows]
                for name, reg in base_env.items()
            }
            out = machine.run_program(program, dict(sub), replicas=1)
            for name in program.outputs:
                expect = fused_out[name][index * n_rows : (index + 1) * n_rows]
                delta = np.abs(out[name] - expect)
                if delta.size:
                    max_deviation = max(max_deviation, float(delta.max()))

    # -- counter additivity: merge R per-replica windows ----------------
    sequential = Machine(width=4, dtype=np.float32, exec_backend="compiled")
    merged_counters = CounterSet()
    for index in range(replicas):
        sub = {
            name: reg[index * n_rows : (index + 1) * n_rows]
            for name, reg in base_env.items()
        }
        window = Machine(width=4, dtype=np.float32, exec_backend="compiled")
        window.run_program(program, dict(sub), replicas=1)
        merged_counters.merge(_vm_counters(window))
        sequential.run_program(program, dict(sub), replicas=1)

    # vm.programs measures dispatches, which batching *reduces* (1 vs R)
    # — it is excluded from the additivity comparison by design.
    counter_mismatch = 0.0
    keys = set(batched_counters.as_dict()) | set(merged_counters.as_dict())
    keys.discard("vm.programs")
    for key in sorted(keys):
        counter_mismatch = max(
            counter_mismatch,
            abs(batched_counters.get(key) - merged_counters.get(key)),
        )

    checks = (
        ShapeCheck(
            key="ensemble_speedup",
            measured=ratios[replicas],
            low=1.2,
            high=1.0e3,
            paper_value=2.0,
            description=f"fused-batched over compiled-sequential replicas/sec "
            f"at R={replicas} (strict >=2x gate: BENCH_vm2.json)",
        ),
        ShapeCheck(
            key="ensemble_bit_identity",
            measured=max_deviation,
            low=0.0,
            high=0.0,
            paper_value=0.0,
            description="batched replicas bit-identical to sequential runs "
            "under interp, compiled, and fused backends (max |delta|)",
        ),
        ShapeCheck(
            key="ensemble_counter_additivity",
            measured=counter_mismatch,
            low=0.0,
            high=0.0,
            paper_value=0.0,
            description="vm.replicas + vm.branch.* counters of one batched "
            "run merge to exactly the R sequential totals",
        ),
    )
    dispatches = int(batched_counters.get("vm.programs"))
    return ExperimentResult(
        experiment_id="ensemble",
        title=f"batched replica ensemble ({replicas} replicas x {n_rows} "
        f"dimer rows, whole-timestep program)",
        headers=(
            "replicas",
            "rows/replica",
            "seq_ms",
            "fused_ms",
            "seq_rps",
            "fused_rps",
            "speedup",
        ),
        rows=tuple(rows),
        checks=checks,
        notes=(
            "Workload: spe_md_timestep_simd_acceleration — pair forces + "
            "integration fused into one closure, no per-segment dispatch.",
            f"The batched run used {dispatches} program dispatch(es) where "
            f"sequential execution uses {replicas}; vm.programs records the "
            "reduction and is excluded from the additivity check.",
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
