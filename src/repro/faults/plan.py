"""Declarative, seeded fault plans — the injection side of ``repro.faults``.

A :class:`FaultPlan` names *where* faults may strike (fault **sites**,
one per hazard the device models expose), *how often* (a per-draw rate
and/or an explicit occurrence schedule), and the recovery policy
(bounded retries, checkpoint cadence, watchdog tolerance).  Plans are
plain data: JSON-serializable both ways, so a plan rides inside harness
job parameters and its bytes participate in content-addressed cache
keys — a cached record computed under one plan can never be replayed
for another.

Determinism contract: every random decision derives from
``(plan.seed, site_name, occurrence_index)`` through per-site
:mod:`numpy` generators (see :mod:`repro.faults.injector`), never from
wall clock or interpreter state.  Two runs of the same workload under
the same plan produce identical fault decisions, identical event logs,
and identical simulated timings.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Mapping

__all__ = ["FAULT_SITES", "SiteSpec", "FaultPlan", "load_plan_arg"]

#: Every fault site the device models expose, and the hazard it models.
FAULT_SITES: dict[str, str] = {
    "cell.dma.fail": "EIB DMA transfer fails outright (no data arrives)",
    "cell.dma.corrupt": "EIB DMA payload corrupted in flight (checksum catches it)",
    "cell.mailbox.drop": "PPE<->SPE mailbox word dropped (timeout + resend)",
    "cell.spe.crash": "SPE thread dies mid-run (work re-partitioned onto survivors)",
    "cell.spe.hang": "SPE thread hangs (heartbeat timeout, then re-partition)",
    "gpu.pcie.corrupt": "PCIe readback corrupted in flight (checksum catches it)",
    "gpu.shader.fail": "shader pass aborts (pipeline fault, pass re-rasterized)",
    "mta.stream.stall": "MTA stream stalls (watchdog restart, issue slots lost)",
    "mta.stream.starve": "MTA processor starved below stream saturation",
    "vm.bitflip": "numeric bit-flip in a VM output buffer / force array",
    "cluster.link.drop": "node-to-node ghost-exchange message lost (timeout + phase resend)",
    "cluster.node.straggler": "one cluster node runs slow this step (barrier absorbs it)",
}


@dataclasses.dataclass(frozen=True)
class SiteSpec:
    """Fault behavior at one site.

    ``rate`` is the per-draw firing probability; ``schedule`` lists
    occurrence indices (the k-th draw at this site) that fire
    unconditionally — the deterministic way to script "one SPE crash at
    step 2".  ``payload`` carries site-specific knobs (corruption
    severity, stall fraction, hang timeout) that the hooks interpret.
    """

    rate: float = 0.0
    schedule: tuple[int, ...] = ()
    payload: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        object.__setattr__(self, "schedule", tuple(int(k) for k in self.schedule))
        if any(k < 0 for k in self.schedule):
            raise ValueError("schedule indices must be non-negative")
        object.__setattr__(self, "payload", dict(self.payload))

    @property
    def armed(self) -> bool:
        return self.rate > 0.0 or bool(self.schedule)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rate": self.rate,
            "schedule": list(self.schedule),
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SiteSpec":
        return cls(
            rate=float(data.get("rate", 0.0)),
            schedule=tuple(data.get("schedule", ())),
            payload=dict(data.get("payload", {})),
        )


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A complete, serializable chaos scenario plus its recovery policy.

    ``backoff_s`` is *simulated* seconds — retry backoff is charged
    through the device cost models into the step timing breakdown, so
    fault runs produce meaningfully degraded timing curves, not wall
    clock noise.
    """

    seed: int = 2007
    sites: Mapping[str, SiteSpec] = dataclasses.field(default_factory=dict)
    max_retries: int = 3
    backoff_s: float = 2.0e-5
    checkpoint_interval: int = 5
    max_restores: int = 8
    watchdog_tolerance: float = 0.05
    watchdog_window: int = 1

    def __post_init__(self) -> None:
        for name in self.sites:
            if name not in FAULT_SITES:
                raise ValueError(
                    f"unknown fault site {name!r}; known sites: "
                    f"{', '.join(sorted(FAULT_SITES))}"
                )
        object.__setattr__(self, "sites", dict(self.sites))
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_s < 0.0:
            raise ValueError("backoff_s must be non-negative")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.max_restores < 0:
            raise ValueError("max_restores must be non-negative")
        if self.watchdog_tolerance <= 0.0:
            raise ValueError("watchdog_tolerance must be positive")
        if self.watchdog_window < 1:
            raise ValueError("watchdog_window must be >= 1")

    @property
    def is_zero(self) -> bool:
        """True when no site can ever fire (the differential baseline)."""
        return not any(spec.armed for spec in self.sites.values())

    def site(self, name: str) -> SiteSpec | None:
        return self.sites.get(name)

    # -- serialization (harness cache keys hash this dict) ---------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "sites": {name: spec.to_dict() for name, spec in sorted(self.sites.items())},
            "max_retries": self.max_retries,
            "backoff_s": self.backoff_s,
            "checkpoint_interval": self.checkpoint_interval,
            "max_restores": self.max_restores,
            "watchdog_tolerance": self.watchdog_tolerance,
            "watchdog_window": self.watchdog_window,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 2007)),
            sites={
                name: SiteSpec.from_dict(spec)
                for name, spec in data.get("sites", {}).items()
            },
            max_retries=int(data.get("max_retries", 3)),
            backoff_s=float(data.get("backoff_s", 2.0e-5)),
            checkpoint_interval=int(data.get("checkpoint_interval", 5)),
            max_restores=int(data.get("max_restores", 8)),
            watchdog_tolerance=float(data.get("watchdog_tolerance", 0.05)),
            watchdog_window=int(data.get("watchdog_window", 1)),
        )

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    # -- presets ---------------------------------------------------------

    @classmethod
    def none(cls, **overrides: Any) -> "FaultPlan":
        """A zero-rate plan: all machinery armed, nothing ever fires.

        Runs under this plan must be bit-identical to runs with no plan
        at all — the differential guarantee the chaos suite enforces.
        """
        return cls(sites={}, **overrides)

    @classmethod
    def storm(cls, seed: int = 2007, **overrides: Any) -> "FaultPlan":
        """The canonical seeded fault storm used by CI and the chaos suite.

        DMA failures and corruptions, mailbox drops, exactly one
        scheduled SPE crash, PCIe readback corruption, a flaky shader
        pass, MTA stream stalls/starvation, and loud VM bit-flips.
        """
        sites = {
            "cell.dma.fail": SiteSpec(rate=0.10),
            "cell.dma.corrupt": SiteSpec(rate=0.10),
            "cell.mailbox.drop": SiteSpec(rate=0.08),
            "cell.spe.crash": SiteSpec(schedule=(2,)),
            "gpu.pcie.corrupt": SiteSpec(rate=0.15),
            "gpu.shader.fail": SiteSpec(rate=0.08),
            "mta.stream.stall": SiteSpec(rate=0.10),
            "mta.stream.starve": SiteSpec(rate=0.08),
            "vm.bitflip": SiteSpec(rate=0.04),
        }
        return cls(seed=seed, sites=sites, **overrides)

    @classmethod
    def cluster_storm(cls, seed: int = 2007, **overrides: Any) -> "FaultPlan":
        """Chaos scenario for the decomposed cluster runs.

        Lossy inter-node links plus an intermittent straggler node
        running 2.5x slow — the two failure modes that dominate
        bulk-synchronous MD on real clusters.  Timing-level only:
        physics stays bit-identical to the fault-free run.
        """
        sites = {
            "cluster.link.drop": SiteSpec(rate=0.12),
            "cluster.node.straggler": SiteSpec(
                rate=0.15, payload={"factor": 2.5}
            ),
        }
        return cls(seed=seed, sites=sites, **overrides)


def load_plan_arg(value: str) -> FaultPlan:
    """Resolve a ``--fault-plan`` CLI argument.

    Accepts a preset name (``storm``, ``none``, ``cluster-storm``) or a
    path to a JSON file holding a serialized plan.
    """
    if value == "storm":
        return FaultPlan.storm()
    if value == "cluster-storm":
        return FaultPlan.cluster_storm()
    if value == "none":
        return FaultPlan.none()
    try:
        with open(value, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        raise ValueError(
            f"--fault-plan expects 'storm', 'cluster-storm', 'none', or a JSON file path; "
            f"{value!r} is neither"
        ) from None
    return FaultPlan.from_dict(data)
