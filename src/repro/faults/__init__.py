"""Deterministic fault injection, detection, and recovery.

The fault plane threads a :class:`FaultPlan` through a device run:
the plan seeds per-site RNG streams (:mod:`repro.faults.injector`),
device models hook named sites, detection layers catch the damage
(:mod:`repro.faults.detect`), and recovery — retry-with-backoff,
SPE re-partitioning, checkpoint restore — is charged through the
existing cost models so fault runs produce honestly degraded timing
curves.  Every recovery leaves structured events
(:mod:`repro.faults.events`); a run never silently corrupts.
"""

from repro.faults.checkpoint import Checkpoint, CheckpointManager, RestoreBudgetExceeded
from repro.faults.detect import (
    NUMERIC_GUARD_LIMIT,
    EnergyDriftWatchdog,
    checksum_matches,
    nonfinite_reason,
    payload_checksum,
)
from repro.faults.events import EventLog, FaultEvent
from repro.faults.injector import FaultDecision, FaultInjector
from repro.faults.plan import FAULT_SITES, FaultPlan, SiteSpec, load_plan_arg
from repro.faults.session import FaultSession, UnrecoveredFaultError

__all__ = [
    "FAULT_SITES",
    "NUMERIC_GUARD_LIMIT",
    "Checkpoint",
    "CheckpointManager",
    "EnergyDriftWatchdog",
    "EventLog",
    "FaultDecision",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSession",
    "RestoreBudgetExceeded",
    "SiteSpec",
    "UnrecoveredFaultError",
    "checksum_matches",
    "load_plan_arg",
    "nonfinite_reason",
    "payload_checksum",
]
