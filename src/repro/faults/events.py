"""Structured fault events — the audit trail every recovery must leave.

Each injection, detection, and recovery appends a :class:`FaultEvent` to
the run's :class:`EventLog`.  The log is the accounting instrument the
chaos suite audits: every injected fault must be detected, and every
detected fault must end in a recovery or a loud abort — never a silent
corruption.  Events carry their *simulated*-seconds cost so experiments
can report faults-seen/faults-recovered alongside degraded timings.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Iterator, Mapping

__all__ = ["FaultEvent", "EventLog"]

#: Recognized event kinds, in lifecycle order.
KINDS = ("injected", "detected", "recovered", "restore", "aborted")


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One entry in the fault audit trail.

    ``detail`` is JSON-native; recovery events carry ``faults`` — how
    many injected faults that recovery cleared — which is what makes
    the log auditable: Σ injected == Σ recovered.faults + Σ
    aborted.faults on a fully recovered run.
    """

    step: int
    site: str
    kind: str
    detail: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    sim_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")
        object.__setattr__(self, "detail", dict(self.detail))

    def to_dict(self) -> dict[str, Any]:
        return {
            "step": self.step,
            "site": self.site,
            "kind": self.kind,
            "detail": dict(self.detail),
            "sim_seconds": self.sim_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultEvent":
        return cls(
            step=int(data["step"]),
            site=data["site"],
            kind=data["kind"],
            detail=dict(data.get("detail", {})),
            sim_seconds=float(data.get("sim_seconds", 0.0)),
        )


class EventLog:
    """Append-only fault audit trail with accounting helpers."""

    def __init__(self) -> None:
        self.events: list[FaultEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def append(
        self,
        step: int,
        site: str,
        kind: str,
        detail: Mapping[str, Any] | None = None,
        sim_seconds: float = 0.0,
    ) -> FaultEvent:
        event = FaultEvent(
            step=step,
            site=site,
            kind=kind,
            detail=detail or {},
            sim_seconds=sim_seconds,
        )
        self.events.append(event)
        return event

    def by_kind(self, kind: str) -> list[FaultEvent]:
        return [e for e in self.events if e.kind == kind]

    def by_site(self, site: str) -> list[FaultEvent]:
        return [e for e in self.events if e.site == site]

    # -- accounting ------------------------------------------------------

    def accounting(self) -> dict[str, int]:
        """Fault conservation tallies across the whole log.

        ``injected`` counts injection events; ``cleared`` sums the
        ``faults`` detail of recovery and abort events.  A fully
        recovered run has ``injected == cleared`` and ``aborted == 0``.
        """
        injected = len(self.by_kind("injected"))
        recovered = sum(
            int(e.detail.get("faults", 1)) for e in self.by_kind("recovered")
        )
        aborted = sum(
            int(e.detail.get("faults", 1)) for e in self.by_kind("aborted")
        )
        return {
            "injected": injected,
            "detected": len(self.by_kind("detected")),
            "recovered": recovered,
            "aborted": aborted,
            "restores": len(self.by_kind("restore")),
            "cleared": recovered + aborted,
        }

    @property
    def fully_accounted(self) -> bool:
        """True when every injected fault was recovered (none aborted)."""
        tally = self.accounting()
        return tally["injected"] == tally["recovered"] and tally["aborted"] == 0

    def summary(self) -> dict[str, Any]:
        tally = self.accounting()
        tally["sim_seconds"] = sum(e.sim_seconds for e in self.events)
        tally["fully_accounted"] = self.fully_accounted
        return tally

    # -- serialization ---------------------------------------------------

    def to_dicts(self) -> list[dict[str, Any]]:
        return [event.to_dict() for event in self.events]

    def canonical_json(self) -> str:
        """Deterministic byte-for-byte form; CI diffs this across runs."""
        return json.dumps(self.to_dicts(), sort_keys=True)
