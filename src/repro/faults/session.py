"""The per-run fault session: injection, detection, recovery, accounting.

One :class:`FaultSession` lives for one :meth:`Device.run` under a
:class:`FaultPlan`.  It owns the deterministic injector and the event
log, and provides the three recovery primitives the device models use:

* :meth:`faulty_transfer` — the bounded retry-with-backoff loop for
  failed/corrupted transfers (DMA, PCIe, mailbox).  Each retry re-pays
  the transfer through the caller-supplied cost and adds exponential
  backoff, all in *simulated* seconds, so fault runs produce degraded
  timing curves through the existing cost models.
* :meth:`transient` — single-shot faults that are detected and absorbed
  within the step (MTA stream stalls/starvation, shader pass re-runs).
* :meth:`guard_backend` — wraps a functional force backend with
  corruption injection (``vm.bitflip``), the numeric guard, and a
  bounded recompute loop; silent corruption that slips through is the
  energy watchdog's job (checkpoint restore, orchestrated by
  :meth:`repro.arch.device.Device.run`).

Retries that exhaust ``plan.max_retries`` raise
:class:`UnrecoveredFaultError` carrying the event log — the run fails
loudly, never silently.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping

import numpy as np

from repro.faults.detect import NUMERIC_GUARD_LIMIT, nonfinite_reason
from repro.faults.events import EventLog
from repro.faults.injector import FaultDecision, FaultInjector
from repro.faults.plan import FaultPlan

__all__ = ["FaultSession", "UnrecoveredFaultError"]


class UnrecoveredFaultError(RuntimeError):
    """A fault survived its whole retry/restore budget."""

    def __init__(self, message: str, log: EventLog | None = None) -> None:
        super().__init__(message)
        self.log = log


def _corrupt_value(
    dtype: np.dtype, rng: np.random.Generator, severity: str, silent_value: float
) -> float:
    """The value an in-flight bit-flip leaves behind.

    ``loud`` saturates the exponent field (the IEEE pattern a
    high-exponent-bit flip produces): non-finite, caught by the numeric
    guard.  ``silent`` is a large-but-plausible finite value that slips
    past the guard and must be caught by the energy watchdog.
    """
    if severity == "silent":
        return float(np.copysign(silent_value, rng.random() - 0.5))
    return float(np.inf if rng.random() < 0.5 else -np.inf)


class FaultSession:
    """Injection + detection + recovery state for one device run."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.injector = FaultInjector(plan)
        self.log = EventLog()
        #: Injection master switch.  Device.run keeps this off through
        #: setup and the initial force evaluation so checkpoint 0 is
        #: trustworthy, then arms it before the first step.  No RNG is
        #: consumed while disabled, so the gate point is deterministic.
        self.enabled = True
        self.step = -1  # -1 = setup / initial force evaluation
        self._pending_seconds = 0.0  # transfer-level charges this step
        self._carried_seconds = 0.0  # wasted work from a restore
        self._step_retries = 0  # force recomputes this step
        self._machine_owned = False  # VM-level injection active
        self._silent_pending = 0  # injected, awaiting watchdog detection

    # -- step lifecycle --------------------------------------------------

    def begin_step(self, step: int) -> None:
        self.step = step

    def charge(self, seconds: float) -> None:
        self._pending_seconds += seconds

    def drain_pending(self) -> float:
        seconds, self._pending_seconds = self._pending_seconds, 0.0
        return seconds

    def drain_retries(self) -> int:
        retries, self._step_retries = self._step_retries, 0
        return retries

    def carry(self, seconds: float) -> None:
        """Park wasted (rolled-back) simulated time on the next good step."""
        self._carried_seconds += seconds

    def drain_carried(self) -> float:
        seconds, self._carried_seconds = self._carried_seconds, 0.0
        return seconds

    # -- raw draws -------------------------------------------------------

    def fire(self, site: str) -> FaultDecision | None:
        """One draw at ``site``; device-specific hooks handle the fallout."""
        if not self.enabled:
            return None
        return self.injector.fire(site)

    def backoff_seconds(self, attempt: int) -> float:
        return self.plan.backoff_s * (2.0 ** max(0, attempt - 1))

    # -- transfer faults (retry-with-backoff) ----------------------------

    def faulty_transfer(
        self,
        site: str,
        attempt_seconds: float | Callable[[], float],
        detection: str,
        on_fault: Callable[[FaultDecision], None] | None = None,
    ) -> float:
        """Guard one transfer; returns the extra simulated seconds spent.

        Draws ``site`` once for the transfer itself; if it fires, the
        receiving end detects it (``detection`` names the mechanism),
        and the transfer is retried with exponential backoff.  Each
        retry re-draws the site — a retry can fail too.  Exhausting the
        budget aborts the run loudly.  ``attempt_seconds`` may be a
        callable so the retry cost is only computed (and any counters
        only bumped) when a fault actually fires; ``on_fault`` lets the
        caller mutate its functional model per fired fault (dropping a
        mailbox word, say).
        """
        decision = self.fire(site)
        if decision is None:
            return 0.0
        extra = 0.0
        faults = 0
        attempts = 0
        while decision is not None:
            if on_fault is not None:
                on_fault(decision)
            faults += 1
            self.log.append(
                self.step, site, "injected",
                {"occurrence": decision.occurrence, "attempt": attempts},
            )
            self.log.append(
                self.step, site, "detected", {"detection": detection}
            )
            attempts += 1
            if attempts > self.plan.max_retries:
                self.log.append(
                    self.step, site, "aborted",
                    {"attempts": attempts, "faults": faults},
                    sim_seconds=extra,
                )
                raise UnrecoveredFaultError(
                    f"{site}: transfer still failing after "
                    f"{self.plan.max_retries} retries at step {self.step}",
                    self.log,
                )
            cost = attempt_seconds() if callable(attempt_seconds) else attempt_seconds
            extra += self.backoff_seconds(attempts) + cost
            decision = self.injector.fire(site)
        self.log.append(
            self.step, site, "recovered",
            {"attempts": attempts, "faults": faults, "detection": detection},
            sim_seconds=extra,
        )
        return extra

    # -- transient faults (absorbed within the step) ---------------------

    def transient(
        self,
        site: str,
        penalty_seconds: Callable[[FaultDecision], float],
        detection: str,
        action: str,
    ) -> float:
        """Draw ``site``; on fire, charge a one-shot penalty and log it."""
        decision = self.fire(site)
        if decision is None:
            return 0.0
        extra = float(penalty_seconds(decision))
        self.log.append(
            self.step, site, "injected", {"occurrence": decision.occurrence}
        )
        self.log.append(self.step, site, "detected", {"detection": detection})
        self.log.append(
            self.step, site, "recovered",
            {"faults": 1, "action": action},
            sim_seconds=extra,
        )
        return extra

    # -- force corruption + numeric guard --------------------------------

    def adopt_machine(self, machine: Any) -> None:
        """Move ``vm.bitflip`` injection down into a VM machine.

        Instruction-level device paths corrupt real VM output buffers;
        the result-level corruption in :meth:`maybe_corrupt_result`
        stands down so faults are injected exactly once.
        """
        machine.install_fault_session(self)
        self._machine_owned = True

    def _severity(self, decision: FaultDecision) -> tuple[str, float]:
        severity = decision.payload.get("severity", "loud")
        if severity == "mixed":
            severity = "silent" if decision.rng.random() < 0.5 else "loud"
        return severity, float(decision.payload.get("silent_value", 1.0e6))

    def machine_bitflip(self, machine: Any, outputs: tuple[str, ...], env: dict) -> None:
        """Maybe flip one element of a declared VM output register.

        Lane 0 is targeted because every kernel's declared outputs
        carry meaningful data there (x-component / PE), so an injected
        flip always propagates into the force result instead of dying
        in a padding lane.
        """
        decision = self.fire("vm.bitflip")
        if decision is None or not outputs:
            return
        name = outputs[int(decision.rng.integers(len(outputs)))]
        register = env.get(name)
        if register is None or register.size == 0:
            return
        row = int(decision.rng.integers(register.shape[0]))
        severity, silent_value = self._severity(decision)
        register[row, 0] = _corrupt_value(
            machine.dtype, decision.rng, severity, silent_value
        )
        self._note_injection(severity, {
            "occurrence": decision.occurrence,
            "register": name,
            "row": row,
            "severity": severity,
            "level": "vm",
        })

    def maybe_corrupt_result(self, result: Any) -> Any:
        """Result-level ``vm.bitflip`` for the NumPy ("fast") force paths."""
        if self._machine_owned:
            return result
        decision = self.fire("vm.bitflip")
        if decision is None:
            return result
        accelerations = np.array(result.accelerations, copy=True)
        flat = accelerations.reshape(-1)
        index = int(decision.rng.integers(flat.size))
        severity, silent_value = self._severity(decision)
        flat[index] = _corrupt_value(
            accelerations.dtype, decision.rng, severity, silent_value
        )
        self._note_injection(severity, {
            "occurrence": decision.occurrence,
            "element": index,
            "severity": severity,
            "level": "result",
        })
        import dataclasses

        return dataclasses.replace(result, accelerations=accelerations)

    def _note_injection(self, severity: str, detail: Mapping[str, Any]) -> None:
        self.log.append(self.step, "vm.bitflip", "injected", detail)
        if severity == "silent":
            self._silent_pending += 1
        else:
            self._loud_pending = getattr(self, "_loud_pending", 0) + 1

    def check_result(self, result: Any) -> str | None:
        """Numeric guard over a ForceResult; a reason string on failure."""
        reason = nonfinite_reason(result.accelerations, "accelerations")
        if reason is not None:
            return reason
        pe = float(result.potential_energy)
        if not math.isfinite(pe) or abs(pe) > NUMERIC_GUARD_LIMIT:
            return "potential energy fails the numeric guard"
        return None

    def guard_backend(self, backend: Callable[..., Any]) -> Callable[..., Any]:
        """Wrap a force backend with corruption, detection, and recompute."""

        def guarded(positions: np.ndarray) -> Any:
            attempts = 0
            while True:
                result = self.maybe_corrupt_result(backend(positions))
                reason = self.check_result(result)
                if reason is None:
                    loud = getattr(self, "_loud_pending", 0)
                    if attempts and loud:
                        self.log.append(
                            self.step, "vm.bitflip", "recovered",
                            {"attempts": attempts, "faults": loud,
                             "action": "force evaluation recomputed"},
                        )
                        self._loud_pending = 0
                    return result
                attempts += 1
                self.log.append(
                    self.step, "vm.bitflip", "detected",
                    {"detection": "numeric-guard", "reason": reason,
                     "attempt": attempts},
                )
                self._step_retries += 1
                if attempts > self.plan.max_retries:
                    self.log.append(
                        self.step, "vm.bitflip", "aborted",
                        {"attempts": attempts,
                         "faults": getattr(self, "_loud_pending", 0)},
                    )
                    raise UnrecoveredFaultError(
                        f"force evaluation still corrupt after "
                        f"{self.plan.max_retries} recomputes at step {self.step}",
                        self.log,
                    )

        return guarded

    # -- watchdog / checkpoint accounting --------------------------------

    @property
    def silent_pending(self) -> int:
        return self._silent_pending

    def note_restore(
        self, step: int, checkpoint_step: int, wasted_seconds: float, drift: float
    ) -> None:
        """Log a watchdog-triggered rewind and settle silent-fault accounts."""
        self.log.append(
            step, "vm.bitflip", "detected",
            {"detection": "energy-watchdog", "drift": drift},
        )
        self.log.append(
            step, "vm.bitflip", "restore",
            {"checkpoint_step": checkpoint_step, "rolled_back": step - checkpoint_step},
            sim_seconds=wasted_seconds,
        )
        if self._silent_pending:
            self.log.append(
                step, "vm.bitflip", "recovered",
                {"faults": self._silent_pending,
                 "action": f"restored to checkpoint at step {checkpoint_step}"},
            )
            self._silent_pending = 0
        self.carry(wasted_seconds)

    def summary(self) -> dict[str, Any]:
        tally = self.log.summary()
        tally["fired_by_site"] = self.injector.fired_counts()
        return tally
