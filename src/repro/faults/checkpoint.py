"""Step-granular checkpoint/restore for :class:`repro.md.simulation.MDSimulation`.

A :class:`Checkpoint` captures everything needed to rewind a simulation
to a known-good step — dynamical state, step counter, and the per-step
records — or to resume an aborted run in a fresh process: checkpoints
serialize to JSON-native dicts, so the harness can persist the last
good snapshot next to a job record and pick the run back up later.

This module deliberately does not import the MD layer at module scope
(the MD layer imports it back for ``MDSimulation.snapshot/restore``);
record reconstruction resolves :class:`StepRecord` lazily.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Sequence

import numpy as np

__all__ = ["Checkpoint", "CheckpointManager", "RestoreBudgetExceeded"]


class RestoreBudgetExceeded(RuntimeError):
    """Raised when a run keeps diverging past ``max_restores`` rewinds."""


@dataclasses.dataclass(frozen=True)
class Checkpoint:
    """One known-good snapshot of a simulation at the end of ``step``."""

    step: int
    positions: np.ndarray
    velocities: np.ndarray
    accelerations: np.ndarray
    potential_energy: float
    interacting_pairs: int
    records: tuple[Any, ...]  # StepRecord tuple, [0 .. step] inclusive
    dtype: str

    def to_dict(self) -> dict[str, Any]:
        """JSON-native form for on-disk persistence (harness resume).

        Each array records its own dtype: the dynamical state legally
        mixes precisions (float64 lattice positions, a float32 device's
        accelerations), and a resumed run must replay bit-identically.
        """
        return {
            "step": self.step,
            "positions": self.positions.tolist(),
            "velocities": self.velocities.tolist(),
            "accelerations": self.accelerations.tolist(),
            "array_dtypes": {
                "positions": str(self.positions.dtype),
                "velocities": str(self.velocities.dtype),
                "accelerations": str(self.accelerations.dtype),
            },
            "potential_energy": float(self.potential_energy),
            "interacting_pairs": int(self.interacting_pairs),
            "records": [dataclasses.asdict(r) for r in self.records],
            "dtype": self.dtype,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Checkpoint":
        from repro.md.simulation import StepRecord

        array_dtypes = data.get("array_dtypes", {})

        def load(name: str) -> np.ndarray:
            dtype = np.dtype(array_dtypes.get(name, data["dtype"]))
            return np.asarray(data[name], dtype=dtype)

        return cls(
            step=int(data["step"]),
            positions=load("positions"),
            velocities=load("velocities"),
            accelerations=load("accelerations"),
            potential_energy=float(data["potential_energy"]),
            interacting_pairs=int(data["interacting_pairs"]),
            records=tuple(StepRecord(**r) for r in data["records"]),
            dtype=data["dtype"],
        )


class CheckpointManager:
    """Keeps the last good snapshot on a fixed step cadence.

    ``interval`` is in steps; step 0 (the initial state) is always
    snapshotted so a restore target exists from the first step on.
    ``note_restore`` enforces the plan's ``max_restores`` budget — a
    run that keeps rewinding is failing loudly, not looping forever.
    """

    def __init__(self, interval: int = 5, max_restores: int = 8) -> None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        if max_restores < 0:
            raise ValueError("max_restores must be non-negative")
        self.interval = interval
        self.max_restores = max_restores
        self.last: Checkpoint | None = None
        self.restores = 0

    def due(self, step: int) -> bool:
        return step % self.interval == 0

    def take(self, sim: Any) -> Checkpoint:
        """Snapshot ``sim`` (an :class:`MDSimulation`) and keep it."""
        self.last = sim.snapshot()
        return self.last

    def maybe_take(self, sim: Any) -> Checkpoint | None:
        if self.due(sim.step_count):
            return self.take(sim)
        return None

    def note_restore(self) -> None:
        self.restores += 1
        if self.restores > self.max_restores:
            raise RestoreBudgetExceeded(
                f"run restored from checkpoint {self.restores} times, "
                f"budget is {self.max_restores}; the workload is diverging "
                "faster than recovery can make progress"
            )


def truncate_records(records: Sequence[Any], step: int) -> list[Any]:
    """Records up to and including ``step`` (list, ready to mutate)."""
    return [r for r in records if r.step <= step]
