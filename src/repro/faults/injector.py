"""Deterministic fault draws: per-site RNG streams keyed off the plan seed.

Each site owns an independent :class:`numpy.random.Generator` seeded by
``sha256(plan.seed, site_name)`` — so the draw sequence at one site is
unaffected by how often *other* sites draw, and identical across
processes and Python hash seeds.  A "draw" is one opportunity for the
site to fire (one transfer, one step, one VM segment execution); the
occurrence index counts draws, which is what plan schedules index.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any

import numpy as np

from repro.faults.plan import FaultPlan, SiteSpec

__all__ = ["FaultDecision", "FaultInjector"]


def _site_seed(plan_seed: int, site: str) -> int:
    digest = hashlib.sha256(f"{plan_seed}:{site}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclasses.dataclass
class FaultDecision:
    """One fired fault: where, which occurrence, and its knobs.

    ``rng`` is the site's generator — corruption details (element
    index, bit position, severity) draw from it so they stay on the
    same deterministic stream as the firing decision itself.
    """

    site: str
    occurrence: int
    payload: dict[str, Any]
    rng: np.random.Generator


class FaultInjector:
    """Draws fault decisions for a plan, one deterministic stream per site."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rngs = {
            site: np.random.default_rng(_site_seed(plan.seed, site))
            for site in plan.sites
        }
        self._occurrences: dict[str, int] = {site: 0 for site in plan.sites}
        self._fired: dict[str, int] = {}

    def fire(self, site: str) -> FaultDecision | None:
        """One draw at ``site``; a :class:`FaultDecision` if it fired.

        Sites absent from the plan never fire and consume no RNG state,
        so a zero-site plan leaves every stream untouched — the
        bit-identity guarantee of the differential tests.
        """
        spec: SiteSpec | None = self.plan.site(site)
        if spec is None:
            return None
        occurrence = self._occurrences[site]
        self._occurrences[site] = occurrence + 1
        fired = occurrence in spec.schedule
        if spec.rate > 0.0:
            # Always consume the draw so schedules never shift the stream.
            sample = self._rngs[site].random()
            fired = fired or sample < spec.rate
        if not fired:
            return None
        self._fired[site] = self._fired.get(site, 0) + 1
        return FaultDecision(
            site=site,
            occurrence=occurrence,
            payload=dict(spec.payload),
            rng=self._rngs[site],
        )

    def fired_counts(self) -> dict[str, int]:
        """How many times each site has fired so far."""
        return dict(self._fired)

    def draw_counts(self) -> dict[str, int]:
        """How many opportunities each site has seen so far."""
        return dict(self._occurrences)
