"""Detection primitives: checksums, numeric guards, and the energy watchdog.

Three independent detection layers, cheapest first:

* **payload checksums** — every simulated DMA/PCIe payload carries a
  CRC32; in-flight corruption is caught at the receiving end before the
  data is used (the transfer is then retried, charged in simulated
  time).
* **numeric guards** — force/position arrays are screened for NaN/inf
  and absurd magnitudes right after each force evaluation; a loud
  bit-flip (exponent/sign) trips this layer and the evaluation is
  recomputed.
* **energy-drift watchdog** — total energy is a conserved quantity of
  the velocity-Verlet integrator, so corruption that slips past the
  numeric guard (a low-bit mantissa flip) surfaces as an energy jump;
  the watchdog flags divergence within a configurable window and the
  run restores from the last good checkpoint.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = [
    "payload_checksum",
    "checksum_matches",
    "nonfinite_reason",
    "EnergyDriftWatchdog",
    "NUMERIC_GUARD_LIMIT",
]

#: Magnitude above which a force/position value is treated as corrupt
#: even when finite (an exponent-bit flip can land below inf).
NUMERIC_GUARD_LIMIT = 1.0e30


def payload_checksum(array: np.ndarray) -> int:
    """CRC32 over the array's bytes — the simulated transfer checksum."""
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


def checksum_matches(array: np.ndarray, expected: int) -> bool:
    return payload_checksum(array) == expected


def nonfinite_reason(
    array: np.ndarray, name: str = "array", limit: float = NUMERIC_GUARD_LIMIT
) -> str | None:
    """Why this array fails the numeric guard, or ``None`` if it passes."""
    array = np.asarray(array)
    if not np.isfinite(array).all():
        return f"{name} contains non-finite values"
    if array.size and float(np.max(np.abs(array))) > limit:
        return f"{name} magnitude exceeds {limit:g}"
    return None


class EnergyDriftWatchdog:
    """Flags total-energy divergence against the run's reference energy.

    ``tolerance`` is relative drift |E - E0| / |E0|; ``window`` is the
    number of *consecutive* violating observations required to trip
    (debounce, so one borderline step under float32 arithmetic does not
    trigger a restore).  The reference energy is armed once at run
    start and survives checkpoint restores — the conserved quantity
    does not move.
    """

    def __init__(self, tolerance: float = 0.05, window: int = 1) -> None:
        if tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.tolerance = tolerance
        self.window = window
        self.reference: float | None = None
        self.violations = 0
        self.trips = 0

    def arm(self, reference_energy: float) -> None:
        self.reference = float(reference_energy)
        self.violations = 0

    def drift(self, total_energy: float) -> float:
        if self.reference is None:
            raise RuntimeError("watchdog not armed")
        scale = abs(self.reference) if self.reference != 0.0 else 1.0
        return abs(total_energy - self.reference) / scale

    def observe(self, total_energy: float) -> bool:
        """Feed one step's total energy; True when the watchdog trips."""
        if self.reference is None:
            self.arm(total_energy)
            return False
        if self.drift(total_energy) > self.tolerance:
            self.violations += 1
        else:
            self.violations = 0
        if self.violations >= self.window:
            self.trips += 1
            self.violations = 0
            return True
        return False

    def reset_debounce(self) -> None:
        """Clear the violation streak (called after a checkpoint restore)."""
        self.violations = 0
