"""Fragment-pipeline throughput model for the streaming GPU.

The GPU's speed "comes from the parallelism in the architecture"
(section 3.2): P identical pipelines each retire shader instructions at
the core clock, with deep pipelining hiding per-instruction latency —
so, like the MTA, the right cost measure is *issue slots*, not latency
chains.  Texture fetches consume extra slots, and an efficiency factor
accounts for fetch/math co-issue imperfection.
"""

from __future__ import annotations

import dataclasses

from repro.arch import calibration as cal
from repro.arch.clock import Clock
from repro.gpu.shader import ShaderProgram
from repro.vm.program import Metrics
from repro.vm.schedule import count_issues

__all__ = ["PipelineArray", "GPU_ISSUE_SLOTS"]

#: Per-opcode issue-slot costs in the fragment pipeline.  Swizzles and
#: writemasks are free on this hardware; texture fetches are not.
GPU_ISSUE_SLOTS: dict[str, float] = {
    "texfetch": float(cal.GPU_TEXFETCH_CYCLES),
    "splat": 0.0,
    "shufb": 0.0,
    "rotqbyi": 0.0,
    "mov": 0.0,
    "fround": 2.0,  # floor/frac pair
}


@dataclasses.dataclass(frozen=True)
class PipelineArray:
    """P parallel pixel pipelines at the core clock."""

    n_pipelines: int = cal.GPU_N_PIPELINES
    efficiency: float = cal.GPU_PIPELINE_EFFICIENCY
    clock: Clock = dataclasses.field(
        default_factory=lambda: Clock(cal.GPU_CLOCK_HZ, "gpu")
    )

    def __post_init__(self) -> None:
        if self.n_pipelines < 1:
            raise ValueError("n_pipelines must be >= 1")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError(
                f"efficiency must be in (0, 1], got {self.efficiency}"
            )

    @property
    def issue_rate(self) -> float:
        """Shader issue slots retired per second across the array."""
        return self.n_pipelines * self.clock.hz * self.efficiency

    def execute_seconds(self, shader: ShaderProgram, metrics: Metrics) -> float:
        """Seconds to run ``shader`` over the workload in ``metrics``."""
        issues = count_issues(
            shader.program, metrics, issue_slots=GPU_ISSUE_SLOTS
        )
        return issues / self.issue_rate

    def repass_seconds(self, shader: ShaderProgram, metrics: Metrics) -> float:
        """Cost of re-executing a failed render pass.

        The pass is idempotent (it only writes its own render target),
        so recovery is a straight re-run of the full rasterization —
        there is no partial-progress credit on a streaming device.
        """
        return self.execute_seconds(shader, metrics)
