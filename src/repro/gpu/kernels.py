"""The MD acceleration shader (paper section 5.2) and the reduction
alternative it avoided.

One shader invocation computes the acceleration of one atom: it "scans
the entire input array, i.e. all the atom positions, for atoms close
enough to interact, and accumulates their contributed forces into a
single acceleration value".  Because fragment programs of that era had
no usable dynamic branching, the cutoff is applied with selects — the
force math runs for every pair and is masked, so the shader's cost is
data-independent.

The per-atom potential-energy contribution rides in the fourth
component of the output ("we can simply store each atom's PE
contribution in the fourth component, and when we read back the
accelerations these values are retrieved for free").
"""

from __future__ import annotations

import math

from repro.gpu.shader import ShaderProgram
from repro.md.lj import LennardJones
from repro.vm.builder import Asm
from repro.vm.program import Node, Program, Segment

__all__ = [
    "build_md_shader",
    "build_gpu_timestep_shader",
    "shader_constants",
    "reduction_pass_count",
    "build_reduction_shader",
    "gpu_reduce",
]


def shader_constants(potential: LennardJones, box_length: float) -> dict[str, float]:
    """Constants compiled into the shader ("constants were compiled into
    the shader program source using the provided JIT compiler")."""
    return {
        "rc2": potential.rcut2,
        "sigma2": potential.sigma * potential.sigma,
        "c24eps": 24.0 * potential.epsilon,
        "c4eps": 4.0 * potential.epsilon,
        "shiftE": potential.shift_energy,
        "one": 1.0,
        "two": 2.0,
        "boxL": box_length,
        "invL": 1.0 / box_length,
    }


_CONSTS = ("rc2", "sigma2", "c24eps", "c4eps", "shiftE", "one", "two", "boxL", "invL")


def _pair_body(a: Asm) -> list[Node]:
    """The per-pair force body shared by the MD shader and the
    whole-timestep shader."""
    return [
        a.texfetch("pj", "xj"),
        a.fs("d", "xi", "pj"),
        # minimum image, closed form: d -= L * round(d * (1/L))
        a.fm("dl", "d", "invL"),
        a.fround("rnd", "dl"),
        a.fnms("d", "rnd", "boxL", "d"),
        # squared distance via multiply + horizontal sum (DP3-style)
        a.fm("sq", "d", "d"),
        *a.hsum3("r2", "sq", tmp="ht"),
        # cutoff + self-pair mask, branchless
        a.fclt("mwithin", "r2", "rc2"),
        a.fs("notself", "one", "self_flag"),
        a.and_("mask", "mwithin", "notself"),
        # force math runs unconditionally; results are masked at the end
        a.fmax("r2safe", "r2", "tiny"),
        a.frest("inv_r2", "r2safe"),
        a.fm("s2", "sigma2", "inv_r2"),
        a.fm("s4", "s2", "s2"),
        a.fm("sr6", "s4", "s2"),
        a.fm("sr12", "sr6", "sr6"),
        a.fms("tt", "sr12", "two", "sr6"),
        a.fm("fmag", "c24eps", "tt"),
        a.fm("fr", "fmag", "inv_r2"),
        a.fm("fvec", "fr", "d"),
        a.selb("fvec", "zero", "fvec", "mask"),
        a.fs("pdiff", "sr12", "sr6"),
        a.fm("pen", "c4eps", "pdiff"),
        a.fs("pe", "pen", "shiftE"),
        a.selb("pe", "zero", "pe", "mask"),
        # PE rides in the fourth component of the output
        a.shufb("acc_out", "fvec", "pe", (0, 1, 2, 4)),
    ]


def build_md_shader(box_length: float) -> ShaderProgram:
    """The per-pair body of the MD fragment program.

    Register contract (see :class:`repro.gpu.device.GpuPairSweep`):
    ``xi`` is the output atom's position, ``xj`` the scanned partner
    (fetched from the position texture), ``self_flag`` marks the
    self-pair; the output ``acc_out`` carries (fx, fy, fz, pe).
    """
    a = Asm()
    program = Program(
        name="gpu_md_shader",
        segments=(Segment("pair", "pairs", tuple(_pair_body(a))),),
        inputs=("xi", "xj", "self_flag", "zero", "tiny") + _CONSTS,
        outputs=("acc_out",),
    )
    program.validate()
    return ShaderProgram(
        program=program,
        input_arrays=("xj",),
        output_register="acc_out",
    )


def build_gpu_timestep_shader(box_length: float) -> Program:
    """The whole-timestep GPU program: pair force pass + integration pass.

    The two render passes of a GPU timestep (force shader, then the
    pointwise integration shader over the acceleration texture) become
    two segments of one program.  ``acc_out`` carries (fx, fy, fz, pe);
    the integrator masks the PE lane to zero before the kick so the
    velocity's padding lane stays clean, then ``vi' = vi + a*dt`` and
    ``xi' = xi + vi'*dt``.  Under the ``fused`` backend the acceleration
    never round-trips through a render target — the exact dispatch the
    whole-timestep fusion removes.
    """
    a = Asm()
    integrate: list[Node] = [
        a.shufb("facc", "acc_out", "zero", (0, 1, 2, 4)),
        a.fma("vi_out", "facc", "dt", "vi"),
        a.fma("xi_out", "vi_out", "dt", "xi"),
    ]
    program = Program(
        name="gpu_md_timestep",
        segments=(
            Segment("pair", "pairs", tuple(_pair_body(a))),
            Segment("integrate", "pairs", tuple(integrate)),
        ),
        inputs=("xi", "xj", "self_flag", "vi", "dt", "zero", "tiny") + _CONSTS,
        outputs=("acc_out", "xi_out", "vi_out"),
    )
    program.validate()
    return program


def reduction_pass_count(n_elements: int, fanin: int = 4) -> int:
    """Gather passes needed to sum ``n_elements`` values on the GPU.

    This is the multi-pass reduction the paper rejected for the PE sum
    ("this method introduces significant overheads"); the ablation
    benchmark prices it against the PE-in-w trick.
    """
    if n_elements < 1:
        raise ValueError("n_elements must be >= 1")
    if fanin < 2:
        raise ValueError("fanin must be >= 2")
    passes = 0
    remaining = n_elements
    while remaining > 1:
        remaining = math.ceil(remaining / fanin)
        passes += 1
    return passes


def build_reduction_shader(fanin: int = 4) -> ShaderProgram:
    """One gather pass: each output element sums ``fanin`` inputs.

    Each input register ``src<i>`` is the same source texture sampled at
    a different coordinate (the driver materializes the strided views);
    the shader itself only gathers and adds, as the streaming model
    requires.
    """
    if fanin < 2:
        raise ValueError("fanin must be >= 2")
    a = Asm()
    sources = tuple(f"src{i}" for i in range(fanin))
    body: list[Node] = [a.texfetch("acc", sources[0])]
    for i in range(1, fanin):
        body.append(a.texfetch(f"v{i}", sources[i]))
        body.append(a.fa("acc", "acc", f"v{i}"))
    body.append(a.mov("red_out", "acc"))
    program = Program(
        name=f"gpu_reduce_{fanin}",
        segments=(Segment("element", "elements", tuple(body)),),
        inputs=sources,
        outputs=("red_out",),
    )
    program.validate()
    return ShaderProgram(
        program=program, input_arrays=sources, output_register="red_out"
    )


def gpu_reduce(
    values, fanin: int = 4, exec_backend: str | None = None
) -> tuple[float, int]:
    """Sum ``values`` through actual multi-pass gather shader executions.

    Returns (total, n_passes).  Functional counterpart of
    :func:`reduction_pass_count`: each pass runs the reduction shader on
    the batched VM over strided views of the previous pass's output,
    exactly as the ping-pong render-target scheme would.  Runs on the
    compiled VM backend unless overridden.
    """
    import numpy as np

    from repro.vm.machine import Machine, resolve_exec_backend

    values = np.asarray(values, dtype=np.float32).ravel()
    if values.size == 0:
        raise ValueError("cannot reduce an empty array")
    shader = build_reduction_shader(fanin)
    machine = Machine(
        width=4,
        dtype=np.float32,
        exec_backend=resolve_exec_backend(exec_backend, default="compiled"),
    )
    passes = 0
    current = values
    while current.size > 1:
        padded_size = -(-current.size // fanin) * fanin
        padded = np.zeros(padded_size, dtype=np.float32)
        padded[: current.size] = current
        n_out = padded_size // fanin
        env = {
            f"src{i}": machine.load_vec3(padded[i::fanin, None])
            for i in range(fanin)
        }
        machine.run_segment(shader.program, "element", env)
        current = env["red_out"][:, 0].copy()
        assert current.size == n_out
        passes += 1
    return float(current[0]), passes
