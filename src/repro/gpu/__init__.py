"""The streaming GPU model: shader contract, pipelines, PCIe, device."""

from repro.gpu.device import GpuDevice, GpuPairSweep, make_pcie_bus
from repro.gpu.kernels import (
    build_md_shader,
    build_reduction_shader,
    gpu_reduce,
    reduction_pass_count,
    shader_constants,
)
from repro.gpu.pipelines import GPU_ISSUE_SLOTS, PipelineArray
from repro.gpu.shader import MAX_INPUT_ARRAYS, ShaderContractError, ShaderProgram

__all__ = [
    "GPU_ISSUE_SLOTS",
    "GpuDevice",
    "GpuPairSweep",
    "MAX_INPUT_ARRAYS",
    "PipelineArray",
    "ShaderContractError",
    "ShaderProgram",
    "build_md_shader",
    "build_reduction_shader",
    "gpu_reduce",
    "make_pcie_bus",
    "reduction_pass_count",
    "shader_constants",
]
