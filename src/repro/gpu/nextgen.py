"""A next-generation (G80/CUDA-class) GPU projection.

The paper closes on exactly this: "the parallelism is increasing; the
next generation from NVIDIA contained 24 pipelines, and that number is
growing", and its outstanding issues include "a standard programming
interface to these diverse set of high-performance computing
platforms".  The G80, released weeks before the paper appeared,
answered both — unified scalar processors and CUDA.

This model projects the MD kernel onto that architecture to quantify
what the programming-model change buys:

* **unified scalar SPs** — 128 stream processors at a hot shader clock;
* **shared-memory tiling** — a thread block stages a tile of positions
  once and every thread reuses it, so the per-pair *texture fetch* cost
  of the streaming model collapses to an amortized shared-memory load;
* **on-chip reduction** — scatter/shared memory make the PE sum a
  log-depth block reduction instead of a readback trick or multi-pass
  gather.

The same VM shader program supplies the arithmetic stream; only the
cost table and the fetch amortization differ — which is the honest
claim: CUDA changed the memory model, not the flops.
"""

from __future__ import annotations

import dataclasses
import math

from repro.arch import calibration as cal
from repro.arch.clock import Clock
from repro.arch.device import Device
from repro.arch.profilecounts import KernelMetrics
from repro.gpu.device import make_pcie_bus
from repro.gpu.kernels import build_md_shader
from repro.md.box import PeriodicBox
from repro.md.lj import LennardJones
from repro.md.simulation import MDConfig
from repro.obs.observe import Observation
from repro.vm.schedule import count_issues

__all__ = ["NextGenGpuSpec", "NextGenGpuDevice"]

#: G80 (GeForce 8800 GTX) launch specs.
G80_SHADER_CLOCK_HZ = 1.35e9
G80_N_SPS = 128
#: Threads per block staging one shared-memory tile of positions.
G80_TILE_ATOMS = 128


@dataclasses.dataclass(frozen=True)
class NextGenGpuSpec:
    """Architectural parameters of the projected part."""

    n_processors: int = G80_N_SPS
    shader_clock_hz: float = G80_SHADER_CLOCK_HZ
    tile_atoms: int = G80_TILE_ATOMS
    #: sustained fraction of peak scalar issue (CUDA MD kernels of the
    #: era reached 30-50% of peak on this pattern)
    efficiency: float = 0.4
    #: shared-memory load cost per pair, cycles (the staging fetch is
    #: amortized over tile_atoms reuses)
    shared_load_cycles: float = 1.0

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise ValueError("n_processors must be >= 1")
        if self.shader_clock_hz <= 0:
            raise ValueError("clock must be positive")
        if self.tile_atoms < 1:
            raise ValueError("tile_atoms must be >= 1")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")


#: Per-opcode issue slots on a scalar SP: 4-wide vector ops decompose
#: into 4 scalar issues; swizzles are register moves (free); the
#: texture fetch becomes an amortized shared-memory access.
_SCALAR_SLOTS: dict[str, float] = {
    "fa": 4.0,
    "fs": 4.0,
    "fm": 4.0,
    "fma": 4.0,
    "fms": 4.0,
    "fnms": 4.0,
    "fdiv": 16.0,
    "fsqrt": 16.0,
    "frest": 4.0,
    "frsqest": 4.0,
    "fround": 4.0,
    "fabs": 4.0,
    "fmin": 4.0,
    "fmax": 4.0,
    "fclt": 4.0,
    "fcgt": 4.0,
    "fceq": 4.0,
    "and_": 4.0,
    "or_": 4.0,
    "selb": 4.0,
    "il": 1.0,
    "ilv": 1.0,
    "mov": 0.0,
    "splat": 0.0,
    "shufb": 0.0,
    "rotqbyi": 0.0,
    "lqd": 4.0,
    "stqd": 4.0,
    "texfetch": 0.0,  # replaced by the amortized shared load below
}


class NextGenGpuDevice(Device):
    """CUDA-class projection of the MD kernel."""

    precision = "float32"

    def __init__(
        self, spec: NextGenGpuSpec | None = None, force_path: str = "all-pairs"
    ) -> None:
        self.spec = spec or NextGenGpuSpec()
        self.force_path = force_path
        self.name = f"gpu-nextgen-{self.spec.n_processors}sp"
        self.clock = Clock(self.spec.shader_clock_hz, "g80")
        self.pcie = make_pcie_bus()
        self._shader_cache: dict[float, object] = {}

    def prepare(self, config: MDConfig) -> None:
        self._box_length = config.make_box().length

    def force_backend(self, sim_box: PeriodicBox, potential: LennardJones):
        return self.functional_backend(sim_box, potential)

    def _shader(self, box_length: float):
        key = round(box_length, 12)
        if key not in self._shader_cache:
            self._shader_cache[key] = build_md_shader(box_length)
        return self._shader_cache[key]

    @property
    def issue_rate(self) -> float:
        return self.spec.n_processors * self.clock.hz * self.spec.efficiency

    def kernel_seconds(self, metrics: KernelMetrics) -> float:
        """Compute time for one force evaluation."""
        shader = self._shader(self._box_length)
        metric_map = dict(metrics.as_dict())
        pairs = float(metrics.n_atoms) ** 2
        metric_map["pairs"] = pairs
        issues = count_issues(
            shader.program, metric_map, issue_slots=_SCALAR_SLOTS
        )
        # staging: each tile is loaded once per block and reused;
        # amortized per-pair shared-memory access replaces the texfetch
        issues += pairs * self.spec.shared_load_cycles
        staging = (
            pairs / self.spec.tile_atoms
        ) * 4.0  # one vec4 global load per tile row per block
        issues += staging
        return issues / self.issue_rate

    def reduction_seconds(self, n_atoms: int) -> float:
        """On-chip log-depth PE reduction (scatter + shared memory)."""
        if n_atoms < 1:
            raise ValueError("n_atoms must be >= 1")
        depth = math.ceil(math.log2(max(2, n_atoms)))
        return self.clock.seconds(depth * 32.0)

    def step_seconds(
        self, metrics: KernelMetrics, step_index: int
    ) -> dict[str, float]:
        array_bytes = metrics.n_atoms * cal.VEC4_F32_BYTES
        return {
            "kernel": self.kernel_seconds(metrics),
            "reduction": self.reduction_seconds(metrics.n_atoms),
            "pcie_upload": self.pcie.upload_time(array_bytes),
            "pcie_readback": self.pcie.readback_time(array_bytes),
            "driver": cal.GPU_STEP_OVERHEAD_S / 4.0,  # leaner CUDA dispatch
            "host": 60.0 * metrics.n_atoms / cal.OPTERON_CLOCK_HZ,
        }

    def setup_breakdown(self) -> dict[str, float]:
        return {"jit_setup": cal.GPU_JIT_SETUP_S / 2.0}

    def observe_step(
        self,
        obs: Observation,
        metrics: KernelMetrics,
        parts: dict[str, float],
        step_index: int,
    ) -> None:
        n = metrics.n_atoms
        array_bytes = n * cal.VEC4_F32_BYTES
        obs.charge_many({
            "gpu.pcie.bytes_up": array_bytes,
            "gpu.pcie.bytes_down": array_bytes,
            "gpu.pcie.bytes": 2 * array_bytes,
            "gpu.pcie.transfers": 2,
            "gpu.shader.passes": 1,
            "gpu.shader.invocations": n,
            "gpu.shader.pair_trips": n * n,
            # invert kernel_seconds back to scalar issue slots (the
            # staging and shared-load surcharges included)
            "gpu.shader.issues": self.kernel_seconds(metrics) * self.issue_rate,
        })
        # One "gpu" lane: the SP array is a single dispatch domain here
        # (per-SM lanes would imply a block schedule this model doesn't
        # simulate).
        upload = parts.get("pcie_upload", 0.0)
        kernel = parts.get("kernel", 0.0)
        reduction = parts.get("reduction", 0.0)
        readback = parts.get("pcie_readback", 0.0)
        driver = parts.get("driver", 0.0)
        host = parts.get("host", 0.0)
        if upload > 0.0:
            obs.span_at("pcie", "pcie", 0.0, upload,
                        args={"step": step_index, "dir": "upload"})
        if kernel > 0.0:
            obs.span_at("kernel", "gpu", upload, kernel,
                        args={"step": step_index})
        if reduction > 0.0:
            obs.span_at("reduction", "gpu", upload + kernel, reduction,
                        args={"step": step_index})
        after = upload + kernel + reduction
        if readback > 0.0:
            obs.span_at("pcie", "pcie", after, readback,
                        args={"step": step_index, "dir": "readback"})
        if driver > 0.0:
            obs.span_at("driver", "host", after + readback, driver,
                        args={"step": step_index})
        if host > 0.0:
            obs.span_at("host", "host", after + readback + driver, host,
                        args={"step": step_index})
