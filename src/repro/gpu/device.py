"""The streaming-GPU device model (paper section 5.2).

Per time step, the host uploads the position texture over PCIe, the
pipeline array executes the MD shader once per output atom (each
invocation scanning all N positions), and the host reads back the
acceleration+PE array — "these costs are included", while the one-time
JIT/setup cost "occurs only once ... so it is not included", matching
the Figure-7 accounting exactly (setup is reported separately by
:class:`repro.arch.device.DeviceRunResult`).
"""

from __future__ import annotations

import numpy as np

from repro.arch import calibration as cal
from repro.arch.device import Device
from repro.arch.interconnect import PCIeBus, TransferModel
from repro.arch.profilecounts import KernelMetrics
from repro.gpu.kernels import build_md_shader, shader_constants
from repro.gpu.pipelines import GPU_ISSUE_SLOTS, PipelineArray
from repro.md.box import PeriodicBox
from repro.md.forces import ForceResult, compute_forces
from repro.md.lj import LennardJones
from repro.md.simulation import MDConfig
from repro.obs.observe import Observation
from repro.tune.context import tuned_value
from repro.tune.spec import TunableSpec, register_tunable
from repro.vm.machine import Machine, resolve_exec_backend
from repro.vm.schedule import count_issues

__all__ = ["GpuDevice", "GpuPairSweep", "make_pcie_bus"]

# The pair-batch width of the functional rasterization: how many output
# rows each driver dispatch materializes as an (rows x N) pair batch.
# Purely a batching choice — every (i, j) pair still contributes exactly
# once, so results are bit-identical across widths.
register_tunable(TunableSpec(
    name="gpu.row_block",
    backend="gpu",
    kind="int",
    default=128,
    candidates=(32, 64, 128, 256, 512),
    low=1,
    high=4096,
    description="output rows per GPU pair-batch dispatch",
    effect="wider batches cut dispatch overhead until the pair batch "
           "overflows cache; narrow batches waste closure setup",
))


def make_pcie_bus() -> PCIeBus:
    return PCIeBus(
        link=TransferModel(
            latency_s=cal.PCIE_LATENCY_S,
            bandwidth_bytes_per_s=cal.PCIE_BANDWIDTH_BPS,
            name="pcie",
        ),
        readback_sync_s=cal.GPU_READBACK_SYNC_S,
    )


class GpuPairSweep:
    """Functional execution of the MD shader on the batched VM.

    One "rasterization": every output atom's invocation scans all N
    partner positions.  The driver plays the rasterizer/texture units:
    it materializes the (i, j) pair batch, runs the shader body, and
    sums each invocation's masked contributions — the accumulation that
    the shader's single-output loop performs across its inner scan.
    """

    def __init__(
        self, shader, width: int = 4, exec_backend: str | None = None
    ) -> None:
        self.shader = shader
        # Shaders only expose declared outputs, so the compiled VM
        # backend is the default; REPRO_VM_EXEC or exec_backend override.
        self.machine = Machine(
            width=width,
            dtype=np.float32,
            exec_backend=resolve_exec_backend(
                exec_backend, default="compiled", device="gpu"
            ),
        )
        self._env_cache: dict[int, dict[str, np.ndarray]] = {}
        self._env_constants: tuple | None = None
        self._replica_env_cache: dict[tuple, dict[str, np.ndarray]] = {}

    @staticmethod
    def _resolve_row_block(row_block: int | None) -> int:
        """Explicit argument > tuned ``gpu.row_block`` > 128."""
        if row_block is not None:
            return row_block
        tuned = tuned_value("gpu.row_block", "gpu")
        return int(tuned) if tuned is not None else 128

    def _block_env(self, batch: int, constants: dict[str, float]) -> dict[str, np.ndarray]:
        """Constant/zero/tiny/self_flag registers per batch size, reused
        across row blocks (only ``self_flag`` is mutated, re-zeroed here)."""
        key = tuple(sorted(constants.items()))
        if key != self._env_constants:
            self._env_cache.clear()
            self._env_constants = key
        cached = self._env_cache.get(batch)
        if cached is None:
            machine = self.machine
            cached = {
                name: machine.make_register(batch, float(value))
                for name, value in constants.items()
            }
            cached["zero"] = machine.make_register(batch, 0.0)
            cached["tiny"] = machine.make_register(batch, 1.0e-12)
            cached["self_flag"] = machine.make_register(batch, 0.0)
            if len(self._env_cache) > 8:
                self._env_cache.clear()
            self._env_cache[batch] = cached
        return cached

    def run(
        self,
        positions: np.ndarray,
        constants: dict[str, float],
        row_block: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Returns (accelerations (n, 3), pe contribution per atom (n,))."""
        row_block = self._resolve_row_block(row_block)
        positions32 = np.asarray(positions, dtype=np.float32)
        n = positions32.shape[0]
        machine = self.machine
        acc = np.zeros((n, 3), dtype=np.float32)
        pe = np.zeros(n, dtype=np.float32)
        for start in range(0, n, row_block):
            stop = min(start + row_block, n)
            rows = np.arange(start, stop)
            xi = np.repeat(positions32[rows], n, axis=0)
            xj = np.tile(positions32, (rows.size, 1))
            j_index = np.tile(np.arange(n), rows.size)
            i_index = np.repeat(rows, n)
            self_rows = i_index == j_index
            env: dict[str, np.ndarray] = {
                "xi": machine.load_vec3(xi),
                "xj": machine.load_vec3(xj),
            }
            batch = env["xi"].shape[0]
            env.update(self._block_env(batch, constants))
            self_flag = env["self_flag"]
            self_flag.fill(0.0)
            self_flag[self_rows] = 1.0
            machine.run_segment(self.shader.program, "pair", env)
            out = env["acc_out"].reshape(rows.size, n, machine.width)
            acc[rows] = out[:, :, :3].sum(axis=1, dtype=np.float32)
            pe[rows] = out[:, :, 3].sum(axis=1, dtype=np.float32)
        return acc, pe

    def _replica_block_env(
        self, batch: int, constants: tuple[dict[str, float], ...]
    ) -> dict[str, np.ndarray]:
        """Constant registers for a replica-stacked batch, cached.

        Unlike the SPE kernels — whose box length is baked into
        reflection immediates — the shader reads its box from ``boxL``/
        ``invL`` *registers*, so replicas may differ in any constant:
        replica r's value fills its row range ``r*B .. (r+1)*B-1``.
        """
        key = (batch, tuple(tuple(sorted(c.items())) for c in constants))
        cached = self._replica_env_cache.get(key)
        if cached is None:
            machine = self.machine
            replicas = len(constants)
            rows = batch // replicas
            names = constants[0].keys()
            cached = {}
            for name in names:
                reg = machine.make_register(batch, 0.0)
                for index, per_replica in enumerate(constants):
                    reg[index * rows : (index + 1) * rows] = np.float32(
                        per_replica[name]
                    )
                cached[name] = reg
            cached["zero"] = machine.make_register(batch, 0.0)
            cached["tiny"] = machine.make_register(batch, 1.0e-12)
            cached["self_flag"] = machine.make_register(batch, 0.0)
            if len(self._replica_env_cache) > 8:
                self._replica_env_cache.clear()
            self._replica_env_cache[key] = cached
        return cached

    def run_replicas(
        self,
        positions: np.ndarray,
        constants,
        row_block: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched multi-replica rasterization: R position sets at once.

        ``positions`` is (R, n, 3); ``constants`` is either one dict
        shared by every replica or a sequence of R dicts (replicas may
        run different box sizes — the shader's constants are registers).
        Replica r occupies rows ``r*B .. (r+1)*B-1``; the ``fused``
        backend executes all replicas per block in one closure call,
        other backends loop per replica with bit-identical results.
        Returns ``(acc (R, n, 3), pe (R, n))``.
        """
        row_block = self._resolve_row_block(row_block)
        positions32 = np.asarray(positions, dtype=np.float32)
        if positions32.ndim != 3:
            raise ValueError(
                f"expected (replicas, n, 3) positions, got {positions32.shape}"
            )
        replicas, n, _ = positions32.shape
        if isinstance(constants, dict):
            constants = (constants,) * replicas
        else:
            constants = tuple(constants)
        if len(constants) != replicas:
            raise ValueError(
                f"{len(constants)} constant sets for {replicas} replicas"
            )
        machine = self.machine
        acc = np.zeros((replicas, n, 3), dtype=np.float32)
        pe = np.zeros((replicas, n), dtype=np.float32)
        for start in range(0, n, row_block):
            stop = min(start + row_block, n)
            rows = np.arange(start, stop)
            xi = np.concatenate(
                [np.repeat(positions32[r, rows], n, axis=0) for r in range(replicas)]
            )
            xj = np.concatenate(
                [np.tile(positions32[r], (rows.size, 1)) for r in range(replicas)]
            )
            j_index = np.tile(np.arange(n), rows.size)
            i_index = np.repeat(rows, n)
            self_rows = np.tile(i_index == j_index, replicas)
            env: dict[str, np.ndarray] = {
                "xi": machine.load_vec3(xi),
                "xj": machine.load_vec3(xj),
            }
            batch = env["xi"].shape[0]
            env.update(self._replica_block_env(batch, constants))
            self_flag = env["self_flag"]
            self_flag.fill(0.0)
            self_flag[self_rows] = 1.0
            machine.run_program(self.shader.program, env, replicas=replicas)
            out = env["acc_out"].reshape(replicas, rows.size, n, machine.width)
            acc[:, rows] = out[:, :, :, :3].sum(axis=2, dtype=np.float32)
            pe[:, rows] = out[:, :, :, 3].sum(axis=2, dtype=np.float32)
        return acc, pe


class GpuDevice(Device):
    """GeForce 7900GTX-class streaming GPU + host CPU."""

    precision = "float32"
    tune_family = "gpu"

    def __init__(self, mode: str = "fast", force_path: str = "all-pairs") -> None:
        if mode not in ("fast", "vm"):
            raise ValueError(f"mode must be 'fast' or 'vm', got {mode!r}")
        self.mode = mode
        self.force_path = force_path
        self.name = "gpu-7900gtx"
        self.pipelines = PipelineArray()
        self.pcie = make_pcie_bus()
        self._shader_cache: dict[float, object] = {}
        self._sweep_cache: dict[float, GpuPairSweep] = {}

    def prepare(self, config: MDConfig) -> None:
        self._box_length = config.make_box().length
        self._potential = config.make_potential()

    def _shader(self, box_length: float):
        key = round(box_length, 12)
        if key not in self._shader_cache:
            self._shader_cache[key] = build_md_shader(box_length)
        return self._shader_cache[key]

    def force_backend(self, sim_box: PeriodicBox, potential: LennardJones):
        if self.mode == "fast":
            return self.functional_backend(sim_box, potential)

        key = round(sim_box.length, 12)
        sweep = self._sweep_cache.get(key)
        if sweep is None:
            if len(self._sweep_cache) > 4:
                self._sweep_cache.clear()
            sweep = GpuPairSweep(self._shader(sim_box.length))
            self._sweep_cache[key] = sweep
        constants = shader_constants(potential, sim_box.length)
        # Cached machines carry state across runs: disarm any stale
        # fault session before optionally arming this run's.
        sweep.machine.install_fault_session(None)
        if self.fault_session is not None:
            # vm mode flips bits in the real render-target registers.
            self.fault_session.adopt_machine(sweep.machine)

        def vm_backend(positions: np.ndarray) -> ForceResult:
            n = positions.shape[0]
            acc, pe_rows = sweep.run(positions, constants)
            # interacting count from the pair distances (host-side tally,
            # only for bookkeeping — the shader itself is branchless)
            reference = compute_forces(positions, sim_box, potential, dtype=np.float32)
            return ForceResult(
                accelerations=acc.astype(np.float64),
                potential_energy=0.5 * float(pe_rows.sum(dtype=np.float64)),
                interacting_pairs=reference.interacting_pairs,
                pairs_examined=n * (n - 1) // 2,
            )

        return vm_backend

    def setup_breakdown(self) -> dict[str, float]:
        """One-time JIT compile + texture/FBO setup (excluded from totals)."""
        return {"jit_setup": cal.GPU_JIT_SETUP_S}

    def step_seconds(
        self, metrics: KernelMetrics, step_index: int
    ) -> dict[str, float]:
        shader = self._shader(self._box_length)
        # The shader runs once per output atom over all N inputs:
        # ordered-pair trips = N * N (the scan includes the masked
        # self-pair, unlike the host kernels' N * (N - 1)).
        shader_metrics = dict(metrics.as_dict())
        shader_metrics["pairs"] = float(metrics.n_atoms) ** 2
        array_bytes = metrics.n_atoms * cal.VEC4_F32_BYTES
        shader_seconds = self.pipelines.execute_seconds(shader, shader_metrics)
        session = self.fault_session
        if session is not None:
            # Readback corruption: the host checksums the acceleration
            # texture and re-reads it over PCIe until clean.
            session.charge(session.faulty_transfer(
                "gpu.pcie.corrupt",
                self.pcie.readback_time(array_bytes),
                detection="payload-checksum",
            ))
            # A failed pass is reported by the driver; the whole
            # rasterization re-executes (plus one driver round trip).
            session.charge(session.transient(
                "gpu.shader.fail",
                lambda decision: self.pipelines.repass_seconds(
                    shader, shader_metrics
                ) + cal.GPU_STEP_OVERHEAD_S,
                detection="driver-status",
                action="shader pass re-executed",
            ))
        return {
            "shader": shader_seconds,
            "pcie_upload": self.pcie.upload_time(array_bytes),
            "pcie_readback": self.pcie.readback_time(array_bytes),
            "driver": cal.GPU_STEP_OVERHEAD_S,
            "host": self._host_seconds(metrics.n_atoms),
        }

    def observe_step(
        self,
        obs: Observation,
        metrics: KernelMetrics,
        parts: dict[str, float],
        step_index: int,
    ) -> None:
        n = metrics.n_atoms
        array_bytes = n * cal.VEC4_F32_BYTES
        shader = self._shader(self._box_length)
        shader_metrics = dict(metrics.as_dict())
        shader_metrics["pairs"] = float(n) ** 2
        obs.charge_many({
            "gpu.pcie.bytes_up": array_bytes,
            "gpu.pcie.bytes_down": array_bytes,
            "gpu.pcie.bytes": 2 * array_bytes,
            "gpu.pcie.transfers": 2,
            "gpu.shader.passes": 1,
            "gpu.shader.invocations": n,
            "gpu.shader.pair_trips": n * n,
            "gpu.shader.issues": count_issues(
                shader.program, shader_metrics, issue_slots=GPU_ISSUE_SLOTS
            ),
        })
        # Timeline: upload, then all pipelines rasterize concurrently,
        # then readback; driver overhead and host integration close out.
        upload = parts.get("pcie_upload", 0.0)
        shade = parts.get("shader", 0.0)
        readback = parts.get("pcie_readback", 0.0)
        driver = parts.get("driver", 0.0)
        host = parts.get("host", 0.0)
        recovery = parts.get("fault_recovery", 0.0)
        if upload > 0.0:
            obs.span_at("pcie", "pcie", 0.0, upload,
                        args={"step": step_index, "dir": "upload"})
        if shade > 0.0:
            for pipe in range(self.pipelines.n_pipelines):
                obs.span_at("shader_pass", f"pipe{pipe}", upload, shade,
                            args={"step": step_index})
        if readback > 0.0:
            obs.span_at("pcie", "pcie", upload + shade, readback,
                        args={"step": step_index, "dir": "readback"})
        after = upload + shade + readback
        if driver > 0.0:
            obs.span_at("driver", "host", after, driver,
                        args={"step": step_index})
        if host > 0.0:
            obs.span_at("host", "host", after + driver, host,
                        args={"step": step_index})
        if recovery > 0.0:
            obs.span_at("fault_recovery", "host", after + driver + host,
                        recovery, args={"step": step_index})

    @staticmethod
    def _host_seconds(n_atoms: int) -> float:
        """Integration + PE summation on the host CPU (linear time,
        "the CPU ... is well suited to this scalar task")."""
        cycles = 60.0 * n_atoms
        return cycles / cal.OPTERON_CLOCK_HZ
