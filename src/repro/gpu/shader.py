"""The streaming-shader programming contract (paper section 3.2).

"Inherently, GPUs are stream processors, as a shader program cannot
read and write to the same memory location.  Thus, arrays must be
designated as either input or output, but not both. ... a shader
program may read from any input locations, but it has only one location
in each output array to which it may write."

:class:`ShaderProgram` wraps a VM program and *enforces* those rules:

* no stores (``stqd``) — the only way data leaves a shader is through
  its declared output registers, one location per invocation;
* inputs are read-only: no instruction may write a register declared as
  an input array;
* a bounded number of input arrays (the era's hardware limited texture
  samplers per pass).

The MD kernel obeys the contract by folding the per-atom PE
contribution into the fourth component of the acceleration output —
the trick section 5.2 describes — because a second output array or a
scatter would be rejected here exactly as the hardware rejects it.
"""

from __future__ import annotations

import dataclasses

from repro.vm.program import Instr, Program

__all__ = ["ShaderProgram", "ShaderContractError", "MAX_INPUT_ARRAYS"]

#: SM3-era fragment shaders address at most 16 texture samplers.
MAX_INPUT_ARRAYS = 16


class ShaderContractError(ValueError):
    """Raised when a program violates the streaming restrictions."""


@dataclasses.dataclass(frozen=True)
class ShaderProgram:
    """A VM program certified to obey the gather-only streaming model."""

    program: Program
    input_arrays: tuple[str, ...]
    output_register: str

    def __post_init__(self) -> None:
        if len(self.input_arrays) > MAX_INPUT_ARRAYS:
            raise ShaderContractError(
                f"{len(self.input_arrays)} input arrays exceed the "
                f"{MAX_INPUT_ARRAYS}-sampler limit"
            )
        if self.output_register in self.input_arrays:
            raise ShaderContractError(
                f"array {self.output_register!r} designated as both input "
                "and output — streaming model forbids read-write arrays"
            )
        writes_output = False
        for seg in self.program.segments:
            for node in _walk(seg.body):
                if not isinstance(node, Instr):
                    continue
                if node.op == "stqd":
                    raise ShaderContractError(
                        "shader programs cannot scatter: store instruction "
                        f"found in segment {seg.name!r}"
                    )
                if node.dest in self.input_arrays:
                    raise ShaderContractError(
                        f"instruction {node.op} writes input array "
                        f"{node.dest!r}; inputs are read-only"
                    )
                if node.dest == self.output_register:
                    writes_output = True
        if not writes_output:
            raise ShaderContractError(
                f"shader never writes its output register "
                f"{self.output_register!r}"
            )


def _walk(nodes):
    from repro.vm.program import IfBlock, Loop

    for node in nodes:
        yield node
        if isinstance(node, (Loop, IfBlock)):
            yield from _walk(node.body)
