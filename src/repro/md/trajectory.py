"""Trajectory recording and XYZ export for the example applications."""

from __future__ import annotations

import dataclasses
from pathlib import Path

import numpy as np

from repro.md.integrators import State

__all__ = ["Frame", "Trajectory"]


@dataclasses.dataclass(frozen=True)
class Frame:
    """One recorded snapshot of the run."""

    step: int
    time: float
    positions: np.ndarray
    kinetic_energy: float
    potential_energy: float

    @property
    def total_energy(self) -> float:
        return self.kinetic_energy + self.potential_energy


class Trajectory:
    """In-memory list of frames with optional thinning and XYZ export."""

    def __init__(self, record_every: int = 1) -> None:
        if record_every < 1:
            raise ValueError(f"record_every must be >= 1, got {record_every}")
        self.record_every = record_every
        self.frames: list[Frame] = []

    def __len__(self) -> int:
        return len(self.frames)

    def __getitem__(self, index: int) -> Frame:
        return self.frames[index]

    def maybe_record(
        self, step: int, time: float, state: State, kinetic: float
    ) -> bool:
        """Record the frame if ``step`` falls on the recording stride."""
        if step % self.record_every != 0:
            return False
        self.frames.append(
            Frame(
                step=step,
                time=time,
                positions=np.array(state.positions, copy=True),
                kinetic_energy=kinetic,
                potential_energy=state.potential_energy,
            )
        )
        return True

    def energies(self) -> np.ndarray:
        """(n_frames, 3) array of kinetic, potential, total energy."""
        return np.array(
            [[f.kinetic_energy, f.potential_energy, f.total_energy] for f in self.frames]
        )

    def write_xyz(self, path: str | Path, element: str = "Ar") -> None:
        """Write all frames in the standard multi-frame XYZ format."""
        path = Path(path)
        with path.open("w", encoding="ascii") as handle:
            for frame in self.frames:
                handle.write(f"{frame.positions.shape[0]}\n")
                handle.write(
                    f"step={frame.step} time={frame.time:.6f} "
                    f"etot={frame.total_energy:.8f}\n"
                )
                for x, y, z in frame.positions:
                    handle.write(f"{element} {x:.8f} {y:.8f} {z:.8f}\n")

    @staticmethod
    def read_xyz(path: str | Path) -> list[np.ndarray]:
        """Read back the positions of every frame of an XYZ file."""
        path = Path(path)
        frames: list[np.ndarray] = []
        with path.open("r", encoding="ascii") as handle:
            lines = handle.read().splitlines()
        cursor = 0
        while cursor < len(lines):
            if not lines[cursor].strip():
                cursor += 1
                continue
            count = int(lines[cursor])
            body = lines[cursor + 2 : cursor + 2 + count]
            coords = np.array(
                [[float(v) for v in line.split()[1:4]] for line in body]
            )
            frames.append(coords)
            cursor += 2 + count
        return frames
