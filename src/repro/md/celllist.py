"""Linked-cell (binning) pair search — the O(N) list build.

:func:`repro.md.neighborlist.build_pairs` finds the same pairs with an
O(N^2) blocked scan, which caps every downstream consumer (the Verlet
list, the ablations, the fig9 sweep) at ~10^4 atoms.  This module bins
atoms into a cubic grid of cells at least ``radius`` wide, so each atom
only examines the 27 cells around its own — O(N) total work at fixed
density.  The structure is the one HOOMD-blue's ``NList``/``CellList``
pair uses (see SNIPPETS.md) and the one the GPU N-body literature
identifies as the step that unlocks large-N MD.

Skin semantics follow HOOMD's buffer contract:

* ``buffer`` — extra shell beyond the cutoff; a list built once stays
  valid until some atom has moved more than ``buffer / 2``.
* ``rebuild_check_delay`` — the displacement check starts only that many
  updates after the last build (the list is reused unconditionally in
  between); with ``check_dist=False`` the list instead rebuilds
  unconditionally every ``rebuild_check_delay`` updates.

:class:`CellListForceBackend` wraps the list into the ``ForceBackend``
callable shape that :class:`repro.md.simulation.MDSimulation` and the
device models consume, and exposes rebuild/reuse counters for the
experiment reports.
"""

from __future__ import annotations

import numpy as np

from repro.md.box import PeriodicBox
from repro.md.forces import ForceResult, compute_pair_forces
from repro.md.lj import LennardJones
from repro.md.neighborlist import build_pairs, validate_list_radius

__all__ = [
    "CellGrid",
    "CellList",
    "CellListForceBackend",
    "build_pairs_cells",
    "cells_per_side",
]


def cells_per_side(box: PeriodicBox, radius: float) -> int:
    """Cells per box edge for a search ``radius``; each cell >= radius wide."""
    if radius <= 0.0:
        raise ValueError(f"search radius must be positive, got {radius}")
    return int(np.floor(box.length / radius))


class CellGrid:
    """A cubic binning of the periodic box into ``m**3`` cells.

    Precomputes, for each of the 27 neighbor offsets, the flat id of the
    neighboring cell of every cell — the periodic "cell adjacency" the
    pair search walks.  Requires ``m >= 3`` so the 27 wrapped neighbor
    cells of any cell are distinct (with fewer, the same cell appears
    under several offsets and pairs would be double-counted).
    """

    def __init__(self, box: PeriodicBox, radius: float) -> None:
        m = cells_per_side(box, radius)
        if m < 3:
            raise ValueError(
                f"box of length {box.length} holds only {m} cells of width "
                f">= {radius} per side; need >= 3 for a linked-cell search"
            )
        self.box = box
        self.radius = radius
        self.m = m
        self.n_cells = m**3
        self.cell_width = box.length / m
        offsets = np.array(
            [(dx, dy, dz) for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)],
            dtype=np.int64,
        )
        grid = np.indices((m, m, m)).reshape(3, -1).T  # (m^3, 3) cell coords
        neighbor_coords = (grid[:, None, :] + offsets[None, :, :]) % m
        #: (n_cells, 27) flat ids of each cell's periodic neighborhood
        self.neighbors = (
            neighbor_coords[:, :, 0] * m * m
            + neighbor_coords[:, :, 1] * m
            + neighbor_coords[:, :, 2]
        )

    def assign(self, positions: np.ndarray) -> np.ndarray:
        """Flat cell id of each atom (positions are wrapped first)."""
        wrapped = self.box.wrap(np.asarray(positions, dtype=np.float64))
        coords = np.floor(wrapped / self.cell_width).astype(np.int64)
        # wrap() keeps positions in [0, L), but L/width * (L - eps) can
        # still floor to m for coordinates within one ulp of L.
        np.clip(coords, 0, self.m - 1, out=coords)
        return coords[:, 0] * self.m * self.m + coords[:, 1] * self.m + coords[:, 2]


def build_pairs_cells(
    positions: np.ndarray,
    box: PeriodicBox,
    radius: float,
    grid: CellGrid | None = None,
) -> np.ndarray:
    """All unordered pairs (i < j) within ``radius``, by linked-cell search.

    Exactly the pair set :func:`repro.md.neighborlist.build_pairs`
    returns (the tests assert set equality), built in O(N) instead of
    O(N^2).  Falls back to the blocked scan when the box is too small to
    hold a 3x3x3 cell grid — the regime where O(N^2) is cheap anyway.
    """
    positions = np.asarray(positions, dtype=np.float64)
    validate_list_radius(radius, box)
    if grid is None:
        if cells_per_side(box, radius) < 3:
            return build_pairs(positions, box, radius)
        grid = CellGrid(box, radius)
    n = positions.shape[0]
    cell_of = grid.assign(positions)

    # Sort atoms by cell: order[k] is the k-th atom in cell-major order,
    # cell c's members are order[starts[c] : starts[c] + counts[c]].
    order = np.argsort(cell_of, kind="stable")
    counts = np.bincount(cell_of, minlength=grid.n_cells)
    starts = np.zeros(grid.n_cells, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])

    radius2 = radius * radius
    chunks: list[np.ndarray] = []
    atom_idx = np.arange(n)
    for off in range(27):
        # For every atom, enumerate all atoms in its `off`-th neighbor
        # cell as candidate partners, fully vectorized: the candidate
        # block of atom i is a run of counts[nc[i]] entries of `order`.
        nc = grid.neighbors[cell_of, off]
        runs = counts[nc]
        total = int(runs.sum())
        if total == 0:
            continue
        rows = np.repeat(atom_idx, runs)
        run_first = np.repeat(np.cumsum(runs) - runs, runs)
        within_run = np.arange(total) - run_first
        cols = order[np.repeat(starts[nc], runs) + within_run]
        keep = rows < cols
        rows, cols = rows[keep], cols[keep]
        if rows.size == 0:
            continue
        delta = positions[rows] - positions[cols]
        delta -= box.length * np.round(delta / box.length)
        r2 = np.einsum("ij,ij->i", delta, delta)
        close = r2 < radius2
        if np.any(close):
            chunks.append(np.column_stack((rows[close], cols[close])))
    if not chunks:
        return np.empty((0, 2), dtype=np.intp)
    pairs = np.concatenate(chunks, axis=0).astype(np.intp, copy=False)
    # Deterministic order regardless of cell geometry, matching the
    # row-major order of the blocked scan.
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


class CellList:
    """Self-maintaining pair list built by linked-cell binning.

    The cell-list sibling of :class:`repro.md.neighborlist.NeighborList`:
    same ``rcut + buffer`` shell, same staleness criterion, O(N) rebuild.

    Parameters
    ----------
    box, potential:
        The periodic cell and the potential whose cutoff the list serves.
    buffer:
        HOOMD's name for the skin: extra shell thickness beyond the
        cutoff.  A built list stays valid until an atom moves more than
        ``buffer / 2``.
    rebuild_check_delay:
        Number of updates after a build before the displacement check
        starts (the list is reused unconditionally until then).  With
        ``check_dist=False`` the list instead rebuilds unconditionally
        every ``rebuild_check_delay`` updates.
    check_dist:
        Whether staleness is decided by measured displacements (True,
        the default) or purely by the update counter (False).
    """

    def __init__(
        self,
        box: PeriodicBox,
        potential: LennardJones,
        buffer: float = 0.3,
        rebuild_check_delay: int = 1,
        check_dist: bool = True,
    ) -> None:
        if buffer < 0.0:
            raise ValueError(f"buffer must be non-negative, got {buffer}")
        if rebuild_check_delay < 1:
            raise ValueError(
                f"rebuild_check_delay must be >= 1, got {rebuild_check_delay}"
            )
        validate_list_radius(potential.rcut + buffer, box)
        self.box = box
        self.potential = potential
        self.buffer = buffer
        self.rebuild_check_delay = rebuild_check_delay
        self.check_dist = check_dist
        self.pairs = np.empty((0, 2), dtype=np.intp)
        self.rebuild_count = 0
        self.reuse_count = 0
        self.check_count = 0
        self._updates_since_build = 0
        self._reference_positions: np.ndarray | None = None
        self._grid: CellGrid | None = None
        if cells_per_side(box, self.radius) >= 3:
            self._grid = CellGrid(box, self.radius)

    @property
    def radius(self) -> float:
        """The list radius, ``rcut + buffer``."""
        return self.potential.rcut + self.buffer

    def max_displacement(self, positions: np.ndarray) -> float:
        """Largest minimum-image displacement since the last build."""
        if self._reference_positions is None:
            return float("inf")
        delta = np.asarray(positions, dtype=np.float64) - self._reference_positions
        delta -= self.box.length * np.round(delta / self.box.length)
        return float(np.sqrt(np.max(np.einsum("ij,ij->i", delta, delta))))

    def needs_rebuild(self, positions: np.ndarray) -> bool:
        """Apply the HOOMD buffer contract to the current positions.

        Judged for the *next* update: the displacement check (or the
        unconditional rebuild when ``check_dist=False``) fires once the
        list is ``rebuild_check_delay`` updates old.  With the default
        delay of 1 every update runs the check, matching
        ``NeighborList``.
        """
        if self._reference_positions is None:
            return True
        age = self._updates_since_build + 1
        if not self.check_dist:
            return age >= self.rebuild_check_delay
        if age < self.rebuild_check_delay:
            return False
        self.check_count += 1
        return self.max_displacement(positions) > 0.5 * self.buffer

    def update(self, positions: np.ndarray) -> bool:
        """Rebuild if stale; returns True when a rebuild happened.

        Like :meth:`NeighborList.update`, re-validates the radius
        against the current box every call so a mid-run box change fails
        loudly instead of silently serving a stale list.
        """
        validate_list_radius(self.radius, self.box)
        if not self.needs_rebuild(positions):
            self._updates_since_build += 1  # ages the list by one update
            self.reuse_count += 1
            return False
        positions = np.asarray(positions, dtype=np.float64)
        self.pairs = build_pairs_cells(positions, self.box, self.radius, self._grid)
        self._reference_positions = positions.copy()
        self._updates_since_build = 0
        self.rebuild_count += 1
        return True


class CellListForceBackend:
    """``ForceBackend`` adapter: cell-list pair search + shared pair kernel.

    Plugs into :class:`repro.md.simulation.MDSimulation` (and the device
    models) anywhere ``compute_forces`` or the Verlet-list path does.
    The ``rebuild_count`` / ``reuse_count`` properties feed the
    list-reuse statistics the ablation report prints.
    """

    def __init__(
        self,
        box: PeriodicBox,
        potential: LennardJones,
        buffer: float = 0.3,
        dtype: np.dtype | type = np.float64,
        rebuild_check_delay: int = 1,
        check_dist: bool = True,
    ) -> None:
        self.cell_list = CellList(
            box,
            potential,
            buffer=buffer,
            rebuild_check_delay=rebuild_check_delay,
            check_dist=check_dist,
        )
        self.dtype = np.dtype(dtype)

    @property
    def rebuild_count(self) -> int:
        return self.cell_list.rebuild_count

    @property
    def reuse_count(self) -> int:
        return self.cell_list.reuse_count

    @property
    def reuse_fraction(self) -> float:
        """Share of force evaluations served by an already-built list."""
        total = self.rebuild_count + self.reuse_count
        return self.reuse_count / total if total else 0.0

    def __call__(self, positions: np.ndarray) -> ForceResult:
        self.cell_list.update(positions)
        return compute_pair_forces(
            positions,
            self.cell_list.pairs,
            self.cell_list.box,
            self.cell_list.potential,
            dtype=self.dtype,
        )
