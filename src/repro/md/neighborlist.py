"""Verlet neighbor (pair) lists — the optimization the paper skips.

Section 3.4 notes that "one of the most common techniques is the
neighboring atom pairlist construction, which is updated every few
simulation time steps", and that the paper's kernels deliberately do
*not* use it.  This module implements the technique so the ablation
benchmark (``abl-nlist`` in DESIGN.md) can quantify exactly what the
paper left on the table for the cache-based baseline.

The list stores, for every atom, all partners within ``rcut + skin``.
It remains valid until some atom has moved more than ``skin / 2`` since
the last rebuild; :class:`NeighborList` tracks displacements and
rebuilds automatically.
"""

from __future__ import annotations

import numpy as np

from repro.md.box import PeriodicBox
from repro.md.forces import ForceResult, compute_pair_forces
from repro.md.lj import LennardJones

__all__ = ["NeighborList", "build_pairs", "compute_forces_neighborlist"]


def validate_list_radius(radius: float, box: PeriodicBox) -> None:
    """Raise if a pair-list radius is unusable for minimum-image searches.

    Shared by :class:`NeighborList` and :class:`repro.md.celllist.CellList`
    so the ``rcut + skin`` contract is checked once at construction *and*
    again on every update — a box swapped mid-run can silently shrink
    below an already-validated radius otherwise.
    """
    if radius > box.half_length:
        raise ValueError(
            f"list radius {radius} exceeds half the box length "
            f"{box.half_length}; shrink rcut + skin or enlarge the box"
        )


def build_pairs(
    positions: np.ndarray,
    box: PeriodicBox,
    radius: float,
    block: int = 512,
) -> np.ndarray:
    """Return all unordered pairs (i < j) within ``radius``, shape (m, 2)."""
    positions = np.asarray(positions, dtype=np.float64)
    n = positions.shape[0]
    validate_list_radius(radius, box)
    radius2 = radius * radius
    chunks: list[np.ndarray] = []
    for start in range(0, n, block):
        stop = min(start + block, n)
        delta = positions[start:stop, None, :] - positions[None, :, :]
        delta -= box.length * np.round(delta / box.length)
        r2 = np.einsum("bjk,bjk->bj", delta, delta)
        rows, cols = np.nonzero(r2 < radius2)
        rows = rows + start
        keep = rows < cols
        if np.any(keep):
            chunks.append(np.column_stack((rows[keep], cols[keep])))
    if not chunks:
        return np.empty((0, 2), dtype=np.intp)
    return np.concatenate(chunks, axis=0)


class NeighborList:
    """Self-maintaining Verlet pair list.

    Parameters
    ----------
    box, potential:
        The periodic cell and the potential whose cutoff the list serves.
    skin:
        Extra shell thickness beyond the cutoff.  Larger skins rebuild
        less often but visit more non-interacting pairs per step.
    """

    def __init__(
        self,
        box: PeriodicBox,
        potential: LennardJones,
        skin: float = 0.3,
    ) -> None:
        if skin < 0.0:
            raise ValueError(f"skin must be non-negative, got {skin}")
        validate_list_radius(potential.rcut + skin, box)
        self.box = box
        self.potential = potential
        self.skin = skin
        self.pairs = np.empty((0, 2), dtype=np.intp)
        self.rebuild_count = 0
        self._reference_positions: np.ndarray | None = None

    def needs_rebuild(self, positions: np.ndarray) -> bool:
        """True if any atom moved more than skin/2 since the last build."""
        if self._reference_positions is None:
            return True
        delta = np.asarray(positions, dtype=np.float64) - self._reference_positions
        delta -= self.box.length * np.round(delta / self.box.length)
        max_disp2 = float(np.max(np.einsum("ij,ij->i", delta, delta)))
        return max_disp2 > (0.5 * self.skin) ** 2

    @property
    def radius(self) -> float:
        """The list radius, ``rcut + skin``."""
        return self.potential.rcut + self.skin

    def update(self, positions: np.ndarray) -> bool:
        """Rebuild the list if stale; returns True when a rebuild happened.

        Re-validates ``rcut + skin`` against the *current* box on every
        call: a box swapped mid-run must fail loudly here, not silently
        serve a stale list between rebuilds.
        """
        validate_list_radius(self.radius, self.box)
        if not self.needs_rebuild(positions):
            return False
        positions = np.asarray(positions, dtype=np.float64)
        self.pairs = build_pairs(positions, self.box, self.potential.rcut + self.skin)
        self._reference_positions = positions.copy()
        self.rebuild_count += 1
        return True


def compute_forces_neighborlist(
    positions: np.ndarray,
    nlist: NeighborList,
    dtype: np.dtype | type = np.float64,
) -> ForceResult:
    """Force evaluation over a pair list instead of all pairs.

    Produces results identical (to the arithmetic precision) to
    :func:`repro.md.forces.compute_forces` whenever the list is fresh
    enough — a property the test suite asserts.
    """
    nlist.update(positions)
    return compute_pair_forces(
        positions, nlist.pairs, nlist.box, nlist.potential, dtype=dtype
    )
