"""Verlet neighbor (pair) lists — the optimization the paper skips.

Section 3.4 notes that "one of the most common techniques is the
neighboring atom pairlist construction, which is updated every few
simulation time steps", and that the paper's kernels deliberately do
*not* use it.  This module implements the technique so the ablation
benchmark (``abl-nlist`` in DESIGN.md) can quantify exactly what the
paper left on the table for the cache-based baseline.

The list stores, for every atom, all partners within ``rcut + skin``.
It remains valid until some atom has moved more than ``skin / 2`` since
the last rebuild; :class:`NeighborList` tracks displacements and
rebuilds automatically.
"""

from __future__ import annotations

import numpy as np

from repro.md.box import PeriodicBox
from repro.md.forces import ForceResult
from repro.md.lj import LennardJones

__all__ = ["NeighborList", "build_pairs", "compute_forces_neighborlist"]


def build_pairs(
    positions: np.ndarray,
    box: PeriodicBox,
    radius: float,
    block: int = 512,
) -> np.ndarray:
    """Return all unordered pairs (i < j) within ``radius``, shape (m, 2)."""
    positions = np.asarray(positions, dtype=np.float64)
    n = positions.shape[0]
    if radius > box.half_length:
        raise ValueError(
            f"list radius {radius} exceeds half the box length {box.half_length}"
        )
    radius2 = radius * radius
    chunks: list[np.ndarray] = []
    for start in range(0, n, block):
        stop = min(start + block, n)
        delta = positions[start:stop, None, :] - positions[None, :, :]
        delta -= box.length * np.round(delta / box.length)
        r2 = np.einsum("bjk,bjk->bj", delta, delta)
        rows, cols = np.nonzero(r2 < radius2)
        rows = rows + start
        keep = rows < cols
        if np.any(keep):
            chunks.append(np.column_stack((rows[keep], cols[keep])))
    if not chunks:
        return np.empty((0, 2), dtype=np.intp)
    return np.concatenate(chunks, axis=0)


class NeighborList:
    """Self-maintaining Verlet pair list.

    Parameters
    ----------
    box, potential:
        The periodic cell and the potential whose cutoff the list serves.
    skin:
        Extra shell thickness beyond the cutoff.  Larger skins rebuild
        less often but visit more non-interacting pairs per step.
    """

    def __init__(
        self,
        box: PeriodicBox,
        potential: LennardJones,
        skin: float = 0.3,
    ) -> None:
        if skin < 0.0:
            raise ValueError(f"skin must be non-negative, got {skin}")
        if potential.rcut + skin > box.half_length:
            raise ValueError(
                f"rcut + skin = {potential.rcut + skin} exceeds half the box "
                f"length {box.half_length}"
            )
        self.box = box
        self.potential = potential
        self.skin = skin
        self.pairs = np.empty((0, 2), dtype=np.intp)
        self.rebuild_count = 0
        self._reference_positions: np.ndarray | None = None

    def needs_rebuild(self, positions: np.ndarray) -> bool:
        """True if any atom moved more than skin/2 since the last build."""
        if self._reference_positions is None:
            return True
        delta = np.asarray(positions, dtype=np.float64) - self._reference_positions
        delta -= self.box.length * np.round(delta / self.box.length)
        max_disp2 = float(np.max(np.einsum("ij,ij->i", delta, delta)))
        return max_disp2 > (0.5 * self.skin) ** 2

    def update(self, positions: np.ndarray) -> bool:
        """Rebuild the list if stale; returns True when a rebuild happened."""
        if not self.needs_rebuild(positions):
            return False
        positions = np.asarray(positions, dtype=np.float64)
        self.pairs = build_pairs(positions, self.box, self.potential.rcut + self.skin)
        self._reference_positions = positions.copy()
        self.rebuild_count += 1
        return True


def compute_forces_neighborlist(
    positions: np.ndarray,
    nlist: NeighborList,
    dtype: np.dtype | type = np.float64,
) -> ForceResult:
    """Force evaluation over a pair list instead of all pairs.

    Produces results identical (to the arithmetic precision) to
    :func:`repro.md.forces.compute_forces` whenever the list is fresh
    enough — a property the test suite asserts.
    """
    nlist.update(positions)
    positions = np.asarray(positions, dtype=np.float64)
    n = positions.shape[0]
    dtype = np.dtype(dtype)
    pos = positions.astype(dtype)
    potential = nlist.potential
    box = nlist.box
    pairs = nlist.pairs
    acc = np.zeros((n, 3), dtype=dtype)
    if pairs.shape[0] == 0:
        return ForceResult(
            accelerations=acc.astype(np.float64),
            potential_energy=0.0,
            interacting_pairs=0,
            pairs_examined=0,
        )
    i, j = pairs[:, 0], pairs[:, 1]
    delta = pos[i] - pos[j]
    length = dtype.type(box.length)
    delta -= length * np.round(delta / length)
    r2 = np.einsum("ij,ij->i", delta, delta)
    within = r2 < dtype.type(potential.rcut2)
    safe_r2 = np.where(within, r2, dtype.type(1.0))
    inv_r2 = np.where(within, dtype.type(potential.sigma**2) / safe_r2, dtype.type(0.0))
    sr6 = inv_r2 * inv_r2 * inv_r2
    sr12 = sr6 * sr6
    f_over_r = (
        dtype.type(24.0 * potential.epsilon)
        * (dtype.type(2.0) * sr12 - sr6)
        * np.where(within, dtype.type(1.0) / safe_r2, dtype.type(0.0))
    )
    force = f_over_r[:, None] * delta
    np.add.at(acc, i, force)
    np.subtract.at(acc, j, force)
    pair_pe = dtype.type(4.0 * potential.epsilon) * (sr12 - sr6) - np.where(
        within, dtype.type(potential.shift_energy), dtype.type(0.0)
    )
    return ForceResult(
        accelerations=acc.astype(np.float64),
        potential_energy=float(pair_pe.sum(dtype=dtype)),
        interacting_pairs=int(np.count_nonzero(within)),
        pairs_examined=int(pairs.shape[0]),
    )
