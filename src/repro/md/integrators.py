"""Time integrators.  The paper's kernel uses velocity Verlet (section 3.5).

The integrators are written as pure functions over (positions,
velocities, accelerations) triples so every device model can reuse them
unchanged — in the paper, only the force evaluation (step 2) is
offloaded; integration stays on the host CPU/PPE.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.md.box import PeriodicBox
from repro.md.forces import ForceResult

__all__ = ["State", "velocity_verlet_step", "leapfrog_step"]

ForceFunction = Callable[[np.ndarray], ForceResult]


@dataclasses.dataclass
class State:
    """The dynamical state of the system at one instant.

    Positions are kept wrapped into the primary cell; velocities and
    accelerations are free vectors.  Mass is 1 in reduced units, so
    accelerations equal forces.
    """

    positions: np.ndarray
    velocities: np.ndarray
    accelerations: np.ndarray
    potential_energy: float = 0.0

    def __post_init__(self) -> None:
        shapes = {
            "positions": np.shape(self.positions),
            "velocities": np.shape(self.velocities),
            "accelerations": np.shape(self.accelerations),
        }
        if len(set(shapes.values())) != 1:
            raise ValueError(f"mismatched state array shapes: {shapes}")

    @property
    def n_atoms(self) -> int:
        return int(np.shape(self.positions)[0])

    def copy(self) -> "State":
        return State(
            positions=np.array(self.positions, copy=True),
            velocities=np.array(self.velocities, copy=True),
            accelerations=np.array(self.accelerations, copy=True),
            potential_energy=self.potential_energy,
        )


def velocity_verlet_step(
    state: State,
    dt: float,
    box: PeriodicBox,
    force_function: ForceFunction,
) -> tuple[State, ForceResult]:
    """Advance one velocity-Verlet step.

    Matches the paper's Figure-4 pseudo code:

    1. advance velocities by half a step with the old accelerations,
    2. calculate forces on each of the N atoms (``force_function``),
    3. move atoms / 4. update (wrap) positions,
    5. finish the velocity update with the new accelerations.

    Returns the new state and the :class:`ForceResult` from step 2 so
    callers can harvest energies and pair counts.
    """
    if dt <= 0.0:
        raise ValueError(f"dt must be positive, got {dt}")
    half_kick = state.velocities + 0.5 * dt * state.accelerations
    new_positions = box.wrap(state.positions + dt * half_kick)
    result = force_function(new_positions)
    new_velocities = half_kick + 0.5 * dt * result.accelerations
    new_state = State(
        positions=new_positions,
        velocities=new_velocities,
        accelerations=result.accelerations,
        potential_energy=result.potential_energy,
    )
    return new_state, result


def leapfrog_step(
    state: State,
    dt: float,
    box: PeriodicBox,
    force_function: ForceFunction,
) -> tuple[State, ForceResult]:
    """Advance one leapfrog step (velocities at half-integer times).

    Kept as an independent integrator for cross-validation: leapfrog and
    velocity Verlet generate identical trajectories for identical
    initial conditions, which the test suite exploits.
    """
    if dt <= 0.0:
        raise ValueError(f"dt must be positive, got {dt}")
    velocities_half = state.velocities + 0.5 * dt * state.accelerations
    new_positions = box.wrap(state.positions + dt * velocities_half)
    result = force_function(new_positions)
    new_velocities = velocities_half + 0.5 * dt * result.accelerations
    new_state = State(
        positions=new_positions,
        velocities=new_velocities,
        accelerations=result.accelerations,
        potential_energy=result.potential_energy,
    )
    return new_state, result
