"""Observables — step 5 of the paper's kernel: "calculate new kinetic
and total energies", plus temperature, momentum and virial pressure for
the examples and validation tests."""

from __future__ import annotations

import numpy as np

from repro.md.integrators import State

__all__ = [
    "kinetic_energy",
    "total_energy",
    "temperature",
    "net_momentum",
    "virial_pressure",
]


def kinetic_energy(velocities: np.ndarray, mass: float = 1.0) -> float:
    """Total kinetic energy, 0.5 * m * sum(v^2)."""
    velocities = np.asarray(velocities, dtype=np.float64)
    return 0.5 * mass * float(np.sum(velocities * velocities))


def total_energy(state: State, mass: float = 1.0) -> float:
    """Kinetic + potential energy of a state."""
    return kinetic_energy(state.velocities, mass) + state.potential_energy


def temperature(velocities: np.ndarray, mass: float = 1.0) -> float:
    """Instantaneous kinetic temperature, 2*KE / (3*N) in reduced units.

    Uses 3N degrees of freedom (no constraint correction), matching the
    simple kernel formulation; with kB = 1.
    """
    velocities = np.asarray(velocities, dtype=np.float64)
    n = velocities.shape[0]
    if n == 0:
        raise ValueError("temperature of an empty system is undefined")
    return 2.0 * kinetic_energy(velocities, mass) / (3.0 * n)


def net_momentum(velocities: np.ndarray, mass: float = 1.0) -> np.ndarray:
    """Total momentum vector; conserved by the Verlet integrator."""
    velocities = np.asarray(velocities, dtype=np.float64)
    return mass * velocities.sum(axis=0)


def virial_pressure(
    n_atoms: int,
    volume: float,
    temp: float,
    virial_sum: float,
) -> float:
    """Pressure from the virial theorem: P = (N*T + W/3) / V.

    ``virial_sum`` is sum over pairs of r_ij . F_ij.
    """
    if volume <= 0.0:
        raise ValueError(f"volume must be positive, got {volume}")
    return (n_atoms * temp + virial_sum / 3.0) / volume
