"""Reduced Lennard-Jones units and conversion helpers.

Everything inside the library works in reduced LJ units where the well
depth ``epsilon``, the zero-crossing distance ``sigma`` and the atomic
mass ``m`` are all 1.  This matches the formulation of the paper's MD
kernel, which is written directly against the 6-12 LJ potential

    V(r) = 4 * epsilon * ((sigma / r)**12 - (sigma / r)**6)

The module also carries the argon parameter set used by the examples so
runs can be reported in laboratory units.
"""

from __future__ import annotations

import dataclasses
import math

#: Boltzmann constant in J/K (CODATA 2018).
KB_JOULE_PER_KELVIN = 1.380649e-23

#: Avogadro constant in 1/mol.
AVOGADRO = 6.02214076e23


@dataclasses.dataclass(frozen=True)
class LJUnitSystem:
    """A concrete realization of reduced LJ units.

    Parameters
    ----------
    epsilon_joule:
        Well depth in joules.
    sigma_meter:
        Length scale in meters.
    mass_kg:
        Particle mass in kilograms.
    """

    epsilon_joule: float
    sigma_meter: float
    mass_kg: float

    @property
    def time_second(self) -> float:
        """The reduced time unit tau = sigma * sqrt(m / epsilon) in seconds."""
        return self.sigma_meter * math.sqrt(self.mass_kg / self.epsilon_joule)

    @property
    def temperature_kelvin(self) -> float:
        """The reduced temperature unit epsilon / kB in kelvin."""
        return self.epsilon_joule / KB_JOULE_PER_KELVIN

    @property
    def velocity_meter_per_second(self) -> float:
        """The reduced velocity unit sigma / tau in m/s."""
        return self.sigma_meter / self.time_second

    @property
    def pressure_pascal(self) -> float:
        """The reduced pressure unit epsilon / sigma**3 in pascals."""
        return self.epsilon_joule / self.sigma_meter**3

    def to_reduced_temperature(self, kelvin: float) -> float:
        """Convert a laboratory temperature to reduced units."""
        return kelvin / self.temperature_kelvin

    def to_kelvin(self, reduced_temperature: float) -> float:
        """Convert a reduced temperature to kelvin."""
        return reduced_temperature * self.temperature_kelvin

    def to_reduced_time(self, seconds: float) -> float:
        """Convert a laboratory time to reduced units."""
        return seconds / self.time_second

    def to_seconds(self, reduced_time: float) -> float:
        """Convert a reduced time to seconds."""
        return reduced_time * self.time_second


#: Canonical argon parameterization (Rahman 1964): epsilon/kB = 119.8 K,
#: sigma = 3.405 Å, m = 39.948 u.
ARGON = LJUnitSystem(
    epsilon_joule=119.8 * KB_JOULE_PER_KELVIN,
    sigma_meter=3.405e-10,
    mass_kg=39.948e-3 / AVOGADRO,
)
