"""The MD driver — the Figure-4 kernel loop of the paper.

    1. advance velocities
    2. calculate forces on each of the N atoms
         compute distance with all other N-1 atoms
         if (distance within cutoff limits) compute forces
    3. move atoms based on their position, velocities & forces
    4. update positions
    5. calculate new kinetic and total energies

:class:`MDSimulation` owns the configuration and state and delegates
step 2 to a pluggable force backend, exactly mirroring how the paper
offloads only the acceleration computation to the SPEs / GPU while the
host performs integration and energy bookkeeping.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.md.box import PeriodicBox
from repro.md.forces import ForceResult, compute_forces
from repro.md.integrators import State, velocity_verlet_step
from repro.md.lattice import cubic_lattice, maxwell_boltzmann_velocities
from repro.md.lj import LennardJones
from repro.md.observables import kinetic_energy
from repro.md.trajectory import Trajectory

__all__ = ["MDConfig", "StepRecord", "MDSimulation", "SimulationDiverged"]

ForceBackend = Callable[[np.ndarray], ForceResult]


class SimulationDiverged(RuntimeError):
    """The integration blew up: non-finite forces or positions.

    Raised by :meth:`MDSimulation.step` the moment NaN/inf reaches the
    dynamical state (an unstable ``dt``, an overlapping start
    configuration, or corruption that escaped the force-level guards).
    The run fails loudly instead of silently recording garbage energies.
    """


@dataclasses.dataclass(frozen=True)
class MDConfig:
    """Everything needed to reproduce a run.

    Defaults correspond to the workload used throughout the paper's
    evaluation: an LJ liquid at the canonical reduced state point, with
    the cutoff short enough that "so few of the tested atoms interact"
    (section 5.1) — a few percent of all pairs.
    """

    n_atoms: int = 2048
    density: float = 0.8442
    temperature: float = 0.72
    dt: float = 0.004
    rcut: float = 2.5
    shift: bool = True
    seed: int = 2007  # publication year; any fixed seed works
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.n_atoms < 2:
            raise ValueError(f"need at least 2 atoms, got {self.n_atoms}")
        if self.dt <= 0.0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        if self.dtype not in ("float32", "float64"):
            raise ValueError(f"dtype must be float32 or float64, got {self.dtype}")

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)

    def make_box(self) -> PeriodicBox:
        return PeriodicBox.from_density(self.n_atoms, self.density)

    def make_potential(self) -> LennardJones:
        return LennardJones(rcut=self.rcut, shift=self.shift)


@dataclasses.dataclass(frozen=True)
class StepRecord:
    """Per-step bookkeeping harvested by the simulation loop."""

    step: int
    time: float
    kinetic_energy: float
    potential_energy: float
    interacting_pairs: int

    @property
    def total_energy(self) -> float:
        return self.kinetic_energy + self.potential_energy


class MDSimulation:
    """Owns a run: configuration, state, trajectory, per-step records."""

    def __init__(
        self,
        config: MDConfig,
        force_backend: ForceBackend | str | None = None,
        record_every: int = 1,
        **backend_options: object,
    ) -> None:
        self.config = config
        self.box = config.make_box()
        self.potential = config.make_potential()
        if isinstance(force_backend, str):
            from repro.md.forcefield import make_force_backend

            force_backend = make_force_backend(
                force_backend,
                self.box,
                self.potential,
                dtype=config.np_dtype,
                **backend_options,
            )
        elif backend_options:
            raise TypeError(
                "backend options are only valid when force_backend is a "
                f"registry name, got {sorted(backend_options)}"
            )
        self._force_backend = force_backend or self._default_backend
        self.trajectory = Trajectory(record_every=record_every)
        self.records: list[StepRecord] = []
        self.step_count = 0
        self.state = self._initial_state()

    def _default_backend(self, positions: np.ndarray) -> ForceResult:
        return compute_forces(
            positions, self.box, self.potential, dtype=self.config.np_dtype
        )

    def _initial_state(self) -> State:
        rng = np.random.default_rng(self.config.seed)
        positions = cubic_lattice(self.config.n_atoms, self.box)
        velocities = maxwell_boltzmann_velocities(
            self.config.n_atoms, self.config.temperature, rng
        )
        result = self._force_backend(positions)
        state = State(
            positions=positions,
            velocities=velocities,
            accelerations=result.accelerations,
            potential_energy=result.potential_energy,
        )
        self._record(state)
        return state

    def _record(self, state: State) -> None:
        time = self.step_count * self.config.dt
        kinetic = kinetic_energy(state.velocities)
        self.records.append(
            StepRecord(
                step=self.step_count,
                time=time,
                kinetic_energy=kinetic,
                potential_energy=state.potential_energy,
                interacting_pairs=self.last_interacting_pairs,
            )
        )
        self.trajectory.maybe_record(self.step_count, time, state, kinetic)

    @property
    def last_interacting_pairs(self) -> int:
        """Interacting-pair count from the most recent force evaluation."""
        return getattr(self, "_last_interacting_pairs", 0)

    def step(self) -> StepRecord:
        """Advance one velocity-Verlet step and record energies."""
        def backend(positions: np.ndarray) -> ForceResult:
            result = self._force_backend(positions)
            self._last_interacting_pairs = result.interacting_pairs
            return result

        self.state, _ = velocity_verlet_step(
            self.state, self.config.dt, self.box, backend
        )
        self.step_count += 1
        self._check_finite(self.state)
        self._record(self.state)
        return self.records[-1]

    def _check_finite(self, state: State) -> None:
        for name, array in (
            ("forces", state.accelerations),
            ("positions", state.positions),
        ):
            if not np.isfinite(array).all():
                raise SimulationDiverged(
                    f"non-finite {name} at step {self.step_count} "
                    f"(dt={self.config.dt}, dtype={self.config.dtype}); "
                    "the integration has diverged"
                )

    def run(self, n_steps: int) -> list[StepRecord]:
        """Advance ``n_steps`` steps; returns the records they produced."""
        if n_steps < 0:
            raise ValueError(f"n_steps must be non-negative, got {n_steps}")
        start = len(self.records)
        for _ in range(n_steps):
            self.step()
        return self.records[start:]

    def snapshot(self):
        """Capture a step-granular checkpoint of the run's full state."""
        from repro.faults.checkpoint import Checkpoint

        return Checkpoint(
            step=self.step_count,
            positions=np.array(self.state.positions, copy=True),
            velocities=np.array(self.state.velocities, copy=True),
            accelerations=np.array(self.state.accelerations, copy=True),
            potential_energy=float(self.state.potential_energy),
            interacting_pairs=int(self.last_interacting_pairs),
            records=tuple(self.records),
            dtype=self.config.dtype,
        )

    def restore(self, checkpoint) -> None:
        """Rewind to ``checkpoint``: state, step counter, records, frames.

        Arrays are restored with their captured dtypes untouched — any
        cast would perturb the replay below the last representable bit
        and break the bit-identity guarantee of fault recovery.
        """
        self.state = State(
            positions=np.array(checkpoint.positions, copy=True),
            velocities=np.array(checkpoint.velocities, copy=True),
            accelerations=np.array(checkpoint.accelerations, copy=True),
            potential_energy=float(checkpoint.potential_energy),
        )
        self.step_count = int(checkpoint.step)
        self._last_interacting_pairs = int(checkpoint.interacting_pairs)
        self.records = list(checkpoint.records)
        self.trajectory.frames = [
            frame for frame in self.trajectory.frames if frame.step <= checkpoint.step
        ]

    def energy_drift(self) -> float:
        """Max |E(t) - E(0)| / |E(0)| over the recorded steps."""
        if len(self.records) < 2:
            return 0.0
        energies = np.array([r.total_energy for r in self.records])
        reference = energies[0]
        scale = abs(reference) if reference != 0.0 else 1.0
        return float(np.max(np.abs(energies - reference)) / scale)
