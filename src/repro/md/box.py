"""Periodic simulation cell and minimum-image arithmetic.

The paper's Cell kernel spends a large share of its time "searching the
27 neighboring unit cells for the instances of each atom pair which are
closest" — i.e. it computes the minimum image by explicitly comparing
the 27 periodic images of the partner atom (section 5.1).  This module
provides both formulations:

* :meth:`PeriodicBox.minimum_image` — the closed-form wrap (round to the
  nearest image), the textbook approach;
* :meth:`PeriodicBox.minimum_image_27search` — the explicit 27-image
  search, bit-for-bit equal to the wrap for displacements produced by
  in-box coordinates, and the exact computation the SPE/GPU kernels in
  :mod:`repro.cell.kernels` and :mod:`repro.gpu.kernels` perform.
"""

from __future__ import annotations

import dataclasses
import itertools

import numpy as np

__all__ = ["PeriodicBox", "IMAGE_OFFSETS"]

#: The 27 unit-cell image offsets, shape (27, 3), ordered lexicographically
#: over (-1, 0, +1)^3 the way a triple nested loop visits them.
IMAGE_OFFSETS = np.array(
    sorted(itertools.product((-1.0, 0.0, 1.0), repeat=3)), dtype=np.float64
)


@dataclasses.dataclass(frozen=True)
class PeriodicBox:
    """A cubic periodic cell of side ``length``.

    All positions handled by the MD engine are kept inside
    ``[0, length)`` by :meth:`wrap`; displacement vectors returned by the
    minimum-image routines therefore always lie in
    ``[-length/2, length/2)`` componentwise.
    """

    length: float

    def __post_init__(self) -> None:
        if not self.length > 0.0:
            raise ValueError(f"box length must be positive, got {self.length}")

    @property
    def volume(self) -> float:
        """The cell volume, ``length**3``."""
        return self.length**3

    @property
    def half_length(self) -> float:
        """Half the box side; the largest meaningful cutoff radius."""
        return 0.5 * self.length

    def wrap(self, positions: np.ndarray) -> np.ndarray:
        """Map positions into the primary cell ``[0, length)``.

        Returns a new array of the same dtype; the input is not modified.
        """
        positions = np.asarray(positions)
        wrapped = positions - np.floor(positions / self.length) * self.length
        # floor() can round x/L up to exactly 1.0 for x just below L in
        # float32, producing a tiny negative coordinate; fold it back.
        wrapped[wrapped < 0.0] += self.length
        wrapped[wrapped >= self.length] -= self.length
        return wrapped

    def minimum_image(self, displacement: np.ndarray) -> np.ndarray:
        """Closed-form minimum-image convention for displacement vectors."""
        displacement = np.asarray(displacement)
        return displacement - self.length * np.round(displacement / self.length)

    def minimum_image_27search(self, displacement: np.ndarray) -> np.ndarray:
        """Minimum image by explicit search over the 27 periodic images.

        This mirrors the paper's SPE kernel: for each displacement the 27
        candidate vectors ``d + offset * L`` are formed and the shortest
        is kept.  Correct whenever ``|d| < 1.5 L`` componentwise, which
        holds for differences of wrapped coordinates.
        """
        displacement = np.asarray(displacement, dtype=np.float64)
        flat = displacement.reshape(-1, 3)
        candidates = flat[:, None, :] + IMAGE_OFFSETS[None, :, :] * self.length
        norms2 = np.einsum("ijk,ijk->ij", candidates, candidates)
        best = np.argmin(norms2, axis=1)
        result = candidates[np.arange(flat.shape[0]), best]
        return result.reshape(displacement.shape)

    def distance(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Minimum-image distance(s) between position arrays ``a`` and ``b``."""
        delta = self.minimum_image(np.asarray(a) - np.asarray(b))
        return np.sqrt(np.sum(delta * delta, axis=-1))

    def random_positions(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` uniform positions inside the cell (float64, shape (n, 3))."""
        return rng.uniform(0.0, self.length, size=(n, 3))

    @classmethod
    def from_density(cls, n_atoms: int, density: float) -> "PeriodicBox":
        """Build the cubic cell that holds ``n_atoms`` at ``density`` (reduced)."""
        if n_atoms <= 0:
            raise ValueError(f"n_atoms must be positive, got {n_atoms}")
        if not density > 0.0:
            raise ValueError(f"density must be positive, got {density}")
        return cls(length=(n_atoms / density) ** (1.0 / 3.0))
