"""The 6-12 Lennard-Jones pair potential used by the paper's kernel.

    V(r) = 4 * epsilon * ((sigma / r)**12 - (sigma / r)**6)

combining the long-range attractive r**-6 term and the short-range
repulsive r**-12 term (paper section 3.4).  A cutoff radius bounds the
interaction range; the potential can optionally be shifted so V(rcut)=0,
which removes the energy jump when pairs cross the cutoff and lets the
integration tests check energy conservation tightly.  The paper's kernel
uses the bare truncated form; the shift only adds a constant per
interacting pair and does not change forces.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["LennardJones"]


@dataclasses.dataclass(frozen=True)
class LennardJones:
    """Truncated (optionally shifted) Lennard-Jones 6-12 potential."""

    epsilon: float = 1.0
    sigma: float = 1.0
    rcut: float = 2.5
    shift: bool = True

    def __post_init__(self) -> None:
        if not self.epsilon > 0.0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if not self.sigma > 0.0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")
        if not self.rcut > 0.0:
            raise ValueError(f"rcut must be positive, got {self.rcut}")

    @property
    def rcut2(self) -> float:
        """Squared cutoff radius; the kernels compare against this."""
        return self.rcut * self.rcut

    @property
    def shift_energy(self) -> float:
        """The constant subtracted per pair when ``shift`` is on."""
        if not self.shift:
            return 0.0
        sr6 = (self.sigma / self.rcut) ** 6
        return 4.0 * self.epsilon * (sr6 * sr6 - sr6)

    def energy(self, r: np.ndarray) -> np.ndarray:
        """Pair energy at separation(s) ``r``; zero beyond the cutoff."""
        r = np.asarray(r, dtype=np.float64)
        if np.any(r <= 0.0):
            raise ValueError("pair separation must be positive")
        sr6 = (self.sigma / r) ** 6
        value = 4.0 * self.epsilon * (sr6 * sr6 - sr6) - self.shift_energy
        return np.where(r < self.rcut, value, 0.0)

    def force_magnitude(self, r: np.ndarray) -> np.ndarray:
        """|F(r)| along the pair axis, positive = repulsive; zero beyond cutoff.

        F(r) = -dV/dr = 24 * epsilon * (2 * (sigma/r)**12 - (sigma/r)**6) / r
        """
        r = np.asarray(r, dtype=np.float64)
        if np.any(r <= 0.0):
            raise ValueError("pair separation must be positive")
        sr6 = (self.sigma / r) ** 6
        value = 24.0 * self.epsilon * (2.0 * sr6 * sr6 - sr6) / r
        return np.where(r < self.rcut, value, 0.0)

    def force_over_r(self, r2: np.ndarray) -> np.ndarray:
        """F(r)/r as a function of the squared separation ``r2``.

        This is the quantity the kernels actually compute — multiplying a
        displacement vector by it yields the force vector without ever
        taking a square root, the classic MD inner-loop formulation.
        Zero beyond the cutoff.
        """
        r2 = np.asarray(r2, dtype=np.float64)
        if np.any(r2 <= 0.0):
            raise ValueError("squared separation must be positive")
        inv_r2 = (self.sigma * self.sigma) / r2
        sr6 = inv_r2 * inv_r2 * inv_r2
        value = 24.0 * self.epsilon * (2.0 * sr6 * sr6 - sr6) / r2
        return np.where(r2 < self.rcut2, value, 0.0)

    def minimum(self) -> float:
        """The separation of the potential minimum, 2**(1/6) * sigma."""
        return 2.0 ** (1.0 / 6.0) * self.sigma
