"""Thermostats for temperature-controlled runs.

The paper's kernel is pure NVE (no thermostat), but its future work —
"full-scale bio-molecular simulation frameworks" — runs NVT, and the
example studies (melting curves, equilibration) need temperature
control.  Two classics are provided:

* :class:`VelocityRescale` — brute-force rescaling to the target
  kinetic temperature every ``interval`` steps;
* :class:`BerendsenThermostat` — weak coupling with time constant
  ``tau``: velocities are scaled toward the target with
  ``lambda^2 = 1 + (dt / tau) * (T0 / T - 1)``.

Both are pure functions over velocity arrays so they compose with any
integrator or device backend.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.md.observables import temperature

__all__ = ["VelocityRescale", "BerendsenThermostat"]


@dataclasses.dataclass
class VelocityRescale:
    """Exact rescaling to ``target_temperature`` every ``interval`` steps."""

    target_temperature: float
    interval: int = 1
    applications: int = 0

    def __post_init__(self) -> None:
        if self.target_temperature < 0.0:
            raise ValueError("target temperature must be non-negative")
        if self.interval < 1:
            raise ValueError("interval must be >= 1")

    def apply(self, velocities: np.ndarray, step: int, dt: float) -> np.ndarray:
        """Return (possibly rescaled) velocities for this step."""
        if step % self.interval != 0:
            return velocities
        current = temperature(velocities)
        if current <= 0.0:
            return velocities
        self.applications += 1
        scale = math.sqrt(self.target_temperature / current)
        return velocities * scale


@dataclasses.dataclass
class BerendsenThermostat:
    """Weak-coupling thermostat (Berendsen et al. 1984)."""

    target_temperature: float
    tau: float = 0.5
    applications: int = 0

    def __post_init__(self) -> None:
        if self.target_temperature < 0.0:
            raise ValueError("target temperature must be non-negative")
        if not self.tau > 0.0:
            raise ValueError("tau must be positive")

    def apply(self, velocities: np.ndarray, step: int, dt: float) -> np.ndarray:
        """Scale velocities toward the target with coupling dt/tau."""
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        current = temperature(velocities)
        if current <= 0.0:
            return velocities
        self.applications += 1
        factor = 1.0 + (dt / self.tau) * (self.target_temperature / current - 1.0)
        # guard against overshoot for dt ~ tau
        factor = max(factor, 0.0)
        return velocities * math.sqrt(factor)
