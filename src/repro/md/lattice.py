"""Initial-condition generators: lattices and thermal velocities.

MD runs in the paper start from an equilibrated LJ liquid.  We initialize
on a crystal lattice (so no two atoms start inside the repulsive core)
with Maxwell-Boltzmann velocities, then optionally pre-equilibrate; the
benchmark harness uses the lattice start directly since the paper's
timings are insensitive to the exact phase point.
"""

from __future__ import annotations

import math

import numpy as np

from repro.md.box import PeriodicBox

__all__ = [
    "cubic_lattice",
    "fcc_lattice",
    "maxwell_boltzmann_velocities",
    "zero_net_momentum",
]

#: The four basis sites of the FCC conventional cell, in cell fractions.
_FCC_BASIS = np.array(
    [
        [0.0, 0.0, 0.0],
        [0.5, 0.5, 0.0],
        [0.5, 0.0, 0.5],
        [0.0, 0.5, 0.5],
    ]
)


def cubic_lattice(n_atoms: int, box: PeriodicBox) -> np.ndarray:
    """Place ``n_atoms`` on a simple-cubic lattice inside ``box``.

    The lattice has ``ceil(n_atoms ** (1/3))`` sites per side; surplus
    sites are dropped from the end, so any ``n_atoms`` is accepted.
    Returns float64 positions of shape ``(n_atoms, 3)``.
    """
    if n_atoms <= 0:
        raise ValueError(f"n_atoms must be positive, got {n_atoms}")
    per_side = math.ceil(n_atoms ** (1.0 / 3.0))
    while per_side**3 < n_atoms:  # guard against floating-point cbrt error
        per_side += 1
    spacing = box.length / per_side
    idx = np.arange(per_side)
    grid = np.stack(np.meshgrid(idx, idx, idx, indexing="ij"), axis=-1)
    sites = grid.reshape(-1, 3)[:n_atoms].astype(np.float64)
    # Offset by half a spacing so atoms sit away from the cell faces.
    return box.wrap((sites + 0.5) * spacing)


def fcc_lattice(n_atoms: int, box: PeriodicBox) -> np.ndarray:
    """Place ``n_atoms`` on an FCC lattice inside ``box``.

    FCC is the ground-state packing for LJ solids; used by the examples
    for physically realistic cold starts.  Surplus basis sites are
    dropped, so any ``n_atoms`` is accepted.
    """
    if n_atoms <= 0:
        raise ValueError(f"n_atoms must be positive, got {n_atoms}")
    cells_per_side = math.ceil((n_atoms / 4.0) ** (1.0 / 3.0))
    while 4 * cells_per_side**3 < n_atoms:
        cells_per_side += 1
    spacing = box.length / cells_per_side
    idx = np.arange(cells_per_side)
    corners = np.stack(np.meshgrid(idx, idx, idx, indexing="ij"), axis=-1)
    corners = corners.reshape(-1, 1, 3).astype(np.float64)
    sites = (corners + _FCC_BASIS[None, :, :]).reshape(-1, 3)[:n_atoms]
    return box.wrap((sites + 0.25) * spacing)


def maxwell_boltzmann_velocities(
    n_atoms: int,
    temperature: float,
    rng: np.random.Generator,
    mass: float = 1.0,
) -> np.ndarray:
    """Draw thermal velocities at a reduced ``temperature``.

    Each component is normal with variance ``T / m`` (kB = 1 in reduced
    units).  The sample is then shifted to zero net momentum and rescaled
    so the kinetic temperature matches ``temperature`` exactly, which
    keeps small systems reproducible for tests.
    """
    if n_atoms <= 0:
        raise ValueError(f"n_atoms must be positive, got {n_atoms}")
    if temperature < 0.0:
        raise ValueError(f"temperature must be non-negative, got {temperature}")
    if temperature == 0.0 or n_atoms == 1:
        return np.zeros((n_atoms, 3))
    velocities = rng.normal(0.0, math.sqrt(temperature / mass), size=(n_atoms, 3))
    velocities = zero_net_momentum(velocities, mass)
    kinetic = 0.5 * mass * float(np.sum(velocities * velocities))
    target = 1.5 * n_atoms * temperature
    if kinetic > 0.0:
        velocities *= math.sqrt(target / kinetic)
    return velocities


def zero_net_momentum(velocities: np.ndarray, mass: float = 1.0) -> np.ndarray:
    """Remove the center-of-mass drift; returns a new array."""
    velocities = np.asarray(velocities, dtype=np.float64)
    return velocities - velocities.mean(axis=0, keepdims=True)
