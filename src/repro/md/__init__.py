"""The molecular-dynamics engine: the paper's computational kernel.

Public surface re-exported here; see DESIGN.md section 1 for the module
map.
"""

from repro.md.bonded import BondedForceField, HarmonicAngle, HarmonicBond
from repro.md.box import PeriodicBox
from repro.md.celllist import (
    CellGrid,
    CellList,
    CellListForceBackend,
    build_pairs_cells,
)
from repro.md.forcefield import (
    VerletListForceBackend,
    available_backends,
    make_force_backend,
    register_backend,
)
from repro.md.forces import (
    ForceResult,
    compute_forces,
    compute_forces_27image,
    compute_forces_reference,
    compute_pair_forces,
)
from repro.md.integrators import State, leapfrog_step, velocity_verlet_step
from repro.md.lattice import (
    cubic_lattice,
    fcc_lattice,
    maxwell_boltzmann_velocities,
    zero_net_momentum,
)
from repro.md.lj import LennardJones
from repro.md.neighborlist import (
    NeighborList,
    build_pairs,
    compute_forces_neighborlist,
)
from repro.md.observables import (
    kinetic_energy,
    net_momentum,
    temperature,
    total_energy,
)
from repro.md.rdf import RadialDistribution, radial_distribution
from repro.md.simulation import MDConfig, MDSimulation, StepRecord
from repro.md.thermostat import BerendsenThermostat, VelocityRescale
from repro.md.trajectory import Frame, Trajectory
from repro.md.units import ARGON, LJUnitSystem

__all__ = [
    "ARGON",
    "BerendsenThermostat",
    "BondedForceField",
    "CellGrid",
    "CellList",
    "CellListForceBackend",
    "ForceResult",
    "HarmonicAngle",
    "HarmonicBond",
    "RadialDistribution",
    "VelocityRescale",
    "VerletListForceBackend",
    "radial_distribution",
    "Frame",
    "LJUnitSystem",
    "LennardJones",
    "MDConfig",
    "MDSimulation",
    "NeighborList",
    "PeriodicBox",
    "State",
    "StepRecord",
    "Trajectory",
    "available_backends",
    "build_pairs",
    "build_pairs_cells",
    "compute_forces",
    "compute_forces_27image",
    "compute_forces_neighborlist",
    "compute_forces_reference",
    "compute_pair_forces",
    "cubic_lattice",
    "make_force_backend",
    "register_backend",
    "fcc_lattice",
    "kinetic_energy",
    "leapfrog_step",
    "maxwell_boltzmann_velocities",
    "net_momentum",
    "temperature",
    "total_energy",
    "velocity_verlet_step",
    "zero_net_momentum",
]
