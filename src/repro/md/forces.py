"""All-pairs O(N^2) force evaluation — step 2 of the paper's kernel.

The paper deliberately avoids pairlist construction and "calculate[s]
the distances on the fly" (section 3.4): every time step each atom's
distance to all other N-1 atoms is computed, atoms inside the cutoff
contribute a force and a potential-energy term.  This module provides

* :func:`compute_forces_reference` — straight nested Python loops,
  the executable specification, for small N and cross-checking;
* :func:`compute_forces` — chunked, vectorized NumPy implementation
  following the guides' idioms (row-blocked to bound working-set size,
  in-place accumulation, no full N×N temporaries for large N);
* :func:`compute_forces_27image` — same physics with the minimum image
  obtained by the explicit 27-image search the Cell kernel uses.

All of them return a :class:`ForceResult` carrying the accelerations,
the potential energy and the interacting-pair count that the device
cost models consume.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.md.box import IMAGE_OFFSETS, PeriodicBox
from repro.md.lj import LennardJones

__all__ = [
    "ForceResult",
    "compute_forces",
    "compute_forces_reference",
    "compute_forces_27image",
    "compute_pair_forces",
]

#: Row-block size for the chunked kernel.  256 rows x 8192 cols x 3 dims of
#: float64 is ~50 MB of transient working set, comfortably in-memory while
#: keeping each BLAS-free NumPy op long enough to amortize dispatch.
_DEFAULT_BLOCK = 256


@dataclasses.dataclass(frozen=True)
class ForceResult:
    """The outcome of one force evaluation.

    Attributes
    ----------
    accelerations:
        Per-atom acceleration vectors, shape ``(n, 3)``; equal to forces
        because the reduced mass is 1.
    potential_energy:
        Total LJ potential energy of the configuration.
    interacting_pairs:
        Number of unordered pairs inside the cutoff — the quantity that
        drives the "interacting" branch of every device cost model.
    pairs_examined:
        Number of unordered pairs whose distance was computed,
        ``n * (n - 1) / 2`` for the all-pairs kernels.
    """

    accelerations: np.ndarray
    potential_energy: float
    interacting_pairs: int
    pairs_examined: int
    #: per-atom interacting-partner counts (ordered view: row i's scan);
    #: None for kernels that do not tally them.  Drives the
    #: load-balance analysis of the Cell partitioning strategies.
    row_interacting: np.ndarray | None = None

    @property
    def interacting_fraction(self) -> float:
        """Share of examined pairs that fell inside the cutoff."""
        if self.pairs_examined == 0:
            return 0.0
        return self.interacting_pairs / self.pairs_examined


def _validate(positions: np.ndarray, box: PeriodicBox, potential: LennardJones) -> np.ndarray:
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError(f"positions must have shape (n, 3), got {positions.shape}")
    if potential.rcut > box.half_length:
        raise ValueError(
            f"cutoff {potential.rcut} exceeds half the box length "
            f"{box.half_length}; minimum image would be ambiguous"
        )
    return positions


def compute_forces_reference(
    positions: np.ndarray,
    box: PeriodicBox,
    potential: LennardJones,
) -> ForceResult:
    """Nested-loop reference kernel; O(N^2) in pure Python, small N only."""
    positions = _validate(positions, box, potential)
    n = positions.shape[0]
    acc = np.zeros((n, 3))
    pe = 0.0
    interacting = 0
    rcut2 = potential.rcut2
    for i in range(n):
        for j in range(i + 1, n):
            delta = box.minimum_image(positions[i] - positions[j])
            r2 = float(delta @ delta)
            if r2 < rcut2:
                interacting += 1
                f_over_r = float(potential.force_over_r(np.array([r2]))[0])
                force = f_over_r * delta
                acc[i] += force
                acc[j] -= force
                pe += float(potential.energy(np.array([np.sqrt(r2)]))[0])
    return ForceResult(
        accelerations=acc,
        potential_energy=pe,
        interacting_pairs=interacting,
        pairs_examined=n * (n - 1) // 2,
    )


def compute_forces(
    positions: np.ndarray,
    box: PeriodicBox,
    potential: LennardJones,
    dtype: np.dtype | type = np.float64,
    block: int = _DEFAULT_BLOCK,
) -> ForceResult:
    """Chunked vectorized all-pairs kernel.

    Parameters
    ----------
    dtype:
        Arithmetic precision.  The paper runs float32 on Cell/GPU and
        float64 on Opteron/MTA-2; passing ``np.float32`` makes this
        kernel reproduce the single-precision arithmetic bit-for-bit at
        the NumPy level.
    block:
        Row-block size; bounds the transient working set to
        ``block * n`` pair entries.
    """
    positions64 = _validate(positions, box, potential)
    n = positions64.shape[0]
    dtype = np.dtype(dtype)
    pos = positions64.astype(dtype)
    length = dtype.type(box.length)
    rcut2 = dtype.type(potential.rcut2)
    sigma2 = dtype.type(potential.sigma * potential.sigma)
    eps24 = dtype.type(24.0 * potential.epsilon)
    eps4 = dtype.type(4.0 * potential.epsilon)
    shift = dtype.type(potential.shift_energy)

    acc = np.zeros((n, 3), dtype=dtype)
    pe = dtype.type(0.0)
    interacting = 0
    row_interacting = np.zeros(n, dtype=np.int64)

    for start in range(0, n, block):
        stop = min(start + block, n)
        # delta[b, j, :] = minimum image of pos[start+b] - pos[j]
        delta = pos[start:stop, None, :] - pos[None, :, :]
        delta -= length * np.round(delta / length)
        r2 = np.einsum("bjk,bjk->bj", delta, delta)
        # Mask out the self pair (r2 == 0 on the diagonal) and the cutoff.
        rows = np.arange(start, stop)
        r2[np.arange(stop - start), rows] = np.inf
        within = r2 < rcut2
        row_interacting[start:stop] = within.sum(axis=1)
        interacting += int(np.count_nonzero(within))
        inv_r2 = np.where(within, sigma2 / np.where(within, r2, 1.0), dtype.type(0.0))
        sr6 = inv_r2 * inv_r2 * inv_r2
        sr12 = sr6 * sr6
        f_over_r = eps24 * (dtype.type(2.0) * sr12 - sr6) * np.where(
            within, dtype.type(1.0) / np.where(within, r2, 1.0), dtype.type(0.0)
        )
        acc[start:stop] += np.einsum("bj,bjk->bk", f_over_r, delta)
        pair_pe = eps4 * (sr12 - sr6) - np.where(within, shift, dtype.type(0.0))
        pe += pair_pe.sum(dtype=dtype)

    # Every unordered pair was visited twice (once from each row block),
    # so halve the tallies; the force accumulation is already one-sided
    # per row and needs no halving.
    return ForceResult(
        accelerations=acc.astype(np.float64),
        potential_energy=0.5 * float(pe),
        interacting_pairs=interacting // 2,
        pairs_examined=n * (n - 1) // 2,
        row_interacting=row_interacting,
    )


def compute_pair_forces(
    positions: np.ndarray,
    pairs: np.ndarray,
    box: PeriodicBox,
    potential: LennardJones,
    dtype: np.dtype | type = np.float64,
) -> ForceResult:
    """Force evaluation over an explicit (i, j) pair array.

    The single arithmetic path shared by every list-driven backend
    (Verlet list, cell list): whichever structure produced ``pairs``,
    the physics — and therefore the equivalence guarantees the test
    suite asserts — is identical.  Pairs outside the cutoff contribute
    nothing; ``pairs_examined`` reports ``pairs.shape[0]``.
    """
    positions = np.asarray(positions, dtype=np.float64)
    n = positions.shape[0]
    dtype = np.dtype(dtype)
    pos = positions.astype(dtype)
    pairs = np.asarray(pairs)
    acc = np.zeros((n, 3), dtype=dtype)
    if pairs.shape[0] == 0:
        return ForceResult(
            accelerations=acc.astype(np.float64),
            potential_energy=0.0,
            interacting_pairs=0,
            pairs_examined=0,
        )
    i, j = pairs[:, 0], pairs[:, 1]
    delta = pos[i] - pos[j]
    length = dtype.type(box.length)
    delta -= length * np.round(delta / length)
    r2 = np.einsum("ij,ij->i", delta, delta)
    within = r2 < dtype.type(potential.rcut2)
    safe_r2 = np.where(within, r2, dtype.type(1.0))
    inv_r2 = np.where(within, dtype.type(potential.sigma**2) / safe_r2, dtype.type(0.0))
    sr6 = inv_r2 * inv_r2 * inv_r2
    sr12 = sr6 * sr6
    f_over_r = (
        dtype.type(24.0 * potential.epsilon)
        * (dtype.type(2.0) * sr12 - sr6)
        * np.where(within, dtype.type(1.0) / safe_r2, dtype.type(0.0))
    )
    force = f_over_r[:, None] * delta
    np.add.at(acc, i, force)
    np.subtract.at(acc, j, force)
    pair_pe = dtype.type(4.0 * potential.epsilon) * (sr12 - sr6) - np.where(
        within, dtype.type(potential.shift_energy), dtype.type(0.0)
    )
    return ForceResult(
        accelerations=acc.astype(np.float64),
        potential_energy=float(pair_pe.sum(dtype=dtype)),
        interacting_pairs=int(np.count_nonzero(within)),
        pairs_examined=int(pairs.shape[0]),
    )


def compute_forces_27image(
    positions: np.ndarray,
    box: PeriodicBox,
    potential: LennardJones,
    dtype: np.dtype | type = np.float64,
    block: int = 64,
) -> ForceResult:
    """All-pairs kernel with minimum image by explicit 27-image search.

    Functionally identical to :func:`compute_forces`; exists so tests can
    certify that the formulation the Cell/GPU kernels use agrees with the
    closed-form wrap, and to serve as the executable specification for
    the "SIMD unit cell reflection" optimization of Figure 5.
    """
    positions64 = _validate(positions, box, potential)
    n = positions64.shape[0]
    dtype = np.dtype(dtype)
    pos = positions64.astype(dtype)
    offsets = (IMAGE_OFFSETS * box.length).astype(dtype)
    rcut2 = dtype.type(potential.rcut2)
    sigma2 = dtype.type(potential.sigma * potential.sigma)
    eps24 = dtype.type(24.0 * potential.epsilon)
    eps4 = dtype.type(4.0 * potential.epsilon)
    shift = dtype.type(potential.shift_energy)

    acc = np.zeros((n, 3), dtype=dtype)
    pe = dtype.type(0.0)
    interacting = 0

    for start in range(0, n, block):
        stop = min(start + block, n)
        raw = pos[start:stop, None, :] - pos[None, :, :]
        # candidates[b, j, m, :] = raw + offset_m ; pick the shortest image.
        candidates = raw[:, :, None, :] + offsets[None, None, :, :]
        norms2 = np.einsum("bjmk,bjmk->bjm", candidates, candidates)
        best = np.argmin(norms2, axis=2)
        b_idx, j_idx = np.indices(best.shape)
        delta = candidates[b_idx, j_idx, best]
        r2 = norms2[b_idx, j_idx, best]
        rows = np.arange(start, stop)
        r2[np.arange(stop - start), rows] = np.inf
        within = r2 < rcut2
        interacting += int(np.count_nonzero(within))
        safe_r2 = np.where(within, r2, dtype.type(1.0))
        inv_r2 = np.where(within, sigma2 / safe_r2, dtype.type(0.0))
        sr6 = inv_r2 * inv_r2 * inv_r2
        sr12 = sr6 * sr6
        f_over_r = eps24 * (dtype.type(2.0) * sr12 - sr6) * np.where(
            within, dtype.type(1.0) / safe_r2, dtype.type(0.0)
        )
        acc[start:stop] += np.einsum("bj,bjk->bk", f_over_r, delta)
        pair_pe = eps4 * (sr12 - sr6) - np.where(within, shift, dtype.type(0.0))
        pe += pair_pe.sum(dtype=dtype)

    return ForceResult(
        accelerations=acc.astype(np.float64),
        potential_energy=0.5 * float(pe),
        interacting_pairs=interacting // 2,
        pairs_examined=n * (n - 1) // 2,
    )
