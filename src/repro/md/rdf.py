"""Radial distribution function g(r) — the standard structural probe.

Used by the examples and the validation tests to confirm that the
simulated LJ system is in the expected phase (the liquid's first peak
near the potential minimum, a crystal's sharp shells) — i.e. that the
kernel every device executes produces real physics, not just numbers.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.md.box import PeriodicBox

__all__ = ["RadialDistribution", "radial_distribution"]


@dataclasses.dataclass(frozen=True)
class RadialDistribution:
    """A binned g(r) estimate."""

    r: np.ndarray
    g: np.ndarray
    n_frames: int

    def first_peak(self) -> tuple[float, float]:
        """(position, height) of the first *local* maximum of g(r).

        For crystals the nearest-neighbor shell is the first peak even
        when a farther shell (more neighbors per shell volume) is
        taller; hence local, not global, maximum.
        """
        if self.g.size == 0:
            raise ValueError("empty histogram")
        for index in range(1, self.g.size - 1):
            if (
                self.g[index] > 0.0
                and self.g[index] >= self.g[index - 1]
                and self.g[index] > self.g[index + 1]
            ):
                return float(self.r[index]), float(self.g[index])
        index = int(np.argmax(self.g))
        return float(self.r[index]), float(self.g[index])


def radial_distribution(
    frames: list[np.ndarray] | np.ndarray,
    box: PeriodicBox,
    r_max: float | None = None,
    n_bins: int = 100,
    block: int = 256,
) -> RadialDistribution:
    """Estimate g(r) from one or more position frames.

    Normalized against the ideal-gas shell count, so g -> 1 at large r
    for a homogeneous fluid.
    """
    if isinstance(frames, np.ndarray) and frames.ndim == 2:
        frames = [frames]
    if not frames:
        raise ValueError("need at least one frame")
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    r_max = r_max if r_max is not None else box.half_length
    if not 0.0 < r_max <= box.half_length:
        raise ValueError(
            f"r_max must be in (0, {box.half_length}], got {r_max}"
        )
    edges = np.linspace(0.0, r_max, n_bins + 1)
    histogram = np.zeros(n_bins, dtype=np.float64)
    n = frames[0].shape[0]

    for positions in frames:
        positions = np.asarray(positions, dtype=np.float64)
        if positions.shape != (n, 3):
            raise ValueError("all frames must share the same (n, 3) shape")
        for start in range(0, n, block):
            stop = min(start + block, n)
            delta = positions[start:stop, None, :] - positions[None, :, :]
            delta -= box.length * np.round(delta / box.length)
            r2 = np.einsum("bjk,bjk->bj", delta, delta)
            rows = np.arange(start, stop)
            r2[np.arange(stop - start), rows] = np.inf  # drop self pairs
            distances = np.sqrt(r2[r2 < r_max * r_max])
            counts, _ = np.histogram(distances, bins=edges)
            histogram += counts

    density = n / box.volume
    shell_volumes = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    ideal = density * shell_volumes * n * len(frames)
    centers = 0.5 * (edges[1:] + edges[:-1])
    with np.errstate(invalid="ignore", divide="ignore"):
        g = np.where(ideal > 0, histogram / ideal, 0.0)
    return RadialDistribution(r=centers, g=g, n_frames=len(frames))
