"""Bonded interactions: harmonic bonds and angles.

Paper section 3.5: "Calculation of forces between bonded atoms is
straightforward and less computationally intensive as there are only a
very small number of bonded interactions as compared to the non-bonded
interactions."  The paper's kernel therefore times only the non-bonded
part; this module supplies the bonded part so the library covers a full
bio-molecular force field's skeleton (bonds + angles + LJ non-bonded),
and so the examples can simulate simple molecules.

Forces are exact gradients of

    V_bond(r)      = 0.5 * k_b * (r - r0)^2
    V_angle(theta) = 0.5 * k_a * (theta - theta0)^2
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.md.box import PeriodicBox

__all__ = ["HarmonicBond", "HarmonicAngle", "BondedForceField"]


@dataclasses.dataclass(frozen=True)
class HarmonicBond:
    """A two-body harmonic spring between atoms ``i`` and ``j``."""

    i: int
    j: int
    k: float
    r0: float

    def __post_init__(self) -> None:
        if self.i == self.j:
            raise ValueError("bond endpoints must differ")
        if self.k < 0.0 or self.r0 <= 0.0:
            raise ValueError("need k >= 0 and r0 > 0")


@dataclasses.dataclass(frozen=True)
class HarmonicAngle:
    """A three-body harmonic angle i-j-k centered on ``j`` (radians)."""

    i: int
    j: int
    k: int
    k_theta: float
    theta0: float

    def __post_init__(self) -> None:
        if len({self.i, self.j, self.k}) != 3:
            raise ValueError("angle atoms must be distinct")
        if self.k_theta < 0.0 or not 0.0 < self.theta0 < np.pi:
            raise ValueError("need k_theta >= 0 and theta0 in (0, pi)")


class BondedForceField:
    """Evaluates bonded energies/forces over a fixed topology."""

    def __init__(
        self,
        bonds: list[HarmonicBond] | None = None,
        angles: list[HarmonicAngle] | None = None,
    ) -> None:
        self.bonds = list(bonds or [])
        self.angles = list(angles or [])

    @property
    def n_terms(self) -> int:
        return len(self.bonds) + len(self.angles)

    def compute(
        self, positions: np.ndarray, box: PeriodicBox
    ) -> tuple[np.ndarray, float]:
        """Return (forces, potential_energy) of all bonded terms."""
        positions = np.asarray(positions, dtype=np.float64)
        forces = np.zeros_like(positions)
        energy = 0.0
        energy += self._bond_terms(positions, box, forces)
        energy += self._angle_terms(positions, box, forces)
        return forces, energy

    def _bond_terms(
        self, positions: np.ndarray, box: PeriodicBox, forces: np.ndarray
    ) -> float:
        if not self.bonds:
            return 0.0
        i = np.array([b.i for b in self.bonds])
        j = np.array([b.j for b in self.bonds])
        k = np.array([b.k for b in self.bonds])
        r0 = np.array([b.r0 for b in self.bonds])
        delta = box.minimum_image(positions[i] - positions[j])
        r = np.sqrt(np.einsum("ij,ij->i", delta, delta))
        if np.any(r <= 0.0):
            raise ValueError("coincident bonded atoms")
        stretch = r - r0
        # F_i = -k (r - r0) * rhat
        f = (-k * stretch / r)[:, None] * delta
        np.add.at(forces, i, f)
        np.subtract.at(forces, j, f)
        return float(np.sum(0.5 * k * stretch * stretch))

    def _angle_terms(
        self, positions: np.ndarray, box: PeriodicBox, forces: np.ndarray
    ) -> float:
        energy = 0.0
        for angle in self.angles:
            rij = box.minimum_image(positions[angle.i] - positions[angle.j])
            rkj = box.minimum_image(positions[angle.k] - positions[angle.j])
            nij = float(np.linalg.norm(rij))
            nkj = float(np.linalg.norm(rkj))
            if nij <= 0.0 or nkj <= 0.0:
                raise ValueError("coincident angle atoms")
            cos_theta = float(rij @ rkj) / (nij * nkj)
            cos_theta = min(1.0, max(-1.0, cos_theta))
            theta = float(np.arccos(cos_theta))
            dtheta = theta - angle.theta0
            energy += 0.5 * angle.k_theta * dtheta * dtheta
            # dV/dtheta, chain rule through cos(theta)
            sin_theta = float(np.sqrt(max(1e-12, 1.0 - cos_theta * cos_theta)))
            coefficient = -angle.k_theta * dtheta / sin_theta
            di = (rkj / (nij * nkj)) - (cos_theta / (nij * nij)) * rij
            dk = (rij / (nij * nkj)) - (cos_theta / (nkj * nkj)) * rkj
            fi = -coefficient * di
            fk = -coefficient * dk
            forces[angle.i] += fi
            forces[angle.k] += fk
            forces[angle.j] -= fi + fk
        return energy
