"""The force-backend registry: select a force path by name.

Every force formulation in the repo — the nested-loop executable
specification, the paper's all-pairs kernels, the Verlet list, the
linked-cell list — is registered here under a short name, so
:class:`repro.md.simulation.MDSimulation`, the device models, the
ablations, and the fig9 sweep can all select one with a string instead
of hand-wiring closures.  A factory receives ``(box, potential)`` plus
keyword options and returns a ``ForceBackend`` callable
(``positions -> ForceResult``).

Stateful backends (Verlet, cell) return fresh objects per call to
:func:`make_force_backend`, so two simulations never share a list.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.md.box import PeriodicBox
from repro.md.celllist import CellListForceBackend
from repro.md.forces import (
    ForceResult,
    compute_forces,
    compute_forces_27image,
    compute_forces_reference,
)
from repro.md.lj import LennardJones
from repro.md.neighborlist import NeighborList, compute_forces_neighborlist
from repro.tune.context import tuned_value
from repro.tune.spec import TunableSpec, register_tunable

__all__ = [
    "BackendFactory",
    "TUNED_OPTION_MAP",
    "VerletListForceBackend",
    "available_backends",
    "make_force_backend",
    "register_backend",
    "tuned_backend_options",
]


class BackendFactory(Protocol):
    def __call__(
        self,
        box: PeriodicBox,
        potential: LennardJones,
        dtype: np.dtype,
        **options: object,
    ) -> Callable[[np.ndarray], ForceResult]: ...


_REGISTRY: dict[str, BackendFactory] = {}


def register_backend(name: str) -> Callable[[BackendFactory], BackendFactory]:
    """Decorator: register a force-backend factory under ``name``."""

    def decorate(factory: BackendFactory) -> BackendFactory:
        if name in _REGISTRY:
            raise ValueError(f"force backend {name!r} is already registered")
        _REGISTRY[name] = factory
        return factory

    return decorate


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_force_backend(
    name: str,
    box: PeriodicBox,
    potential: LennardJones,
    dtype: np.dtype | type = np.float64,
    **options: object,
) -> Callable[[np.ndarray], ForceResult]:
    """Instantiate the named backend for one simulation.

    ``options`` are backend-specific (e.g. ``skin`` for ``"verlet"``,
    ``buffer``/``rebuild_check_delay`` for ``"cell"``); unknown names
    raise with the list of registered ones.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown force backend {name!r}; registered: "
            f"{', '.join(available_backends())}"
        ) from None
    return factory(box, potential, np.dtype(dtype), **options)


class VerletListForceBackend:
    """``ForceBackend`` adapter over a self-maintaining Verlet list.

    The Verlet sibling of
    :class:`repro.md.celllist.CellListForceBackend`, with the same
    rebuild/reuse counters so reports can compare list reuse across the
    two structures.
    """

    def __init__(
        self,
        box: PeriodicBox,
        potential: LennardJones,
        skin: float = 0.3,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        self.nlist = NeighborList(box, potential, skin=skin)
        self.dtype = np.dtype(dtype)
        self.reuse_count = 0

    @property
    def rebuild_count(self) -> int:
        return self.nlist.rebuild_count

    @property
    def reuse_fraction(self) -> float:
        """Share of force evaluations served by an already-built list."""
        total = self.rebuild_count + self.reuse_count
        return self.reuse_count / total if total else 0.0

    def __call__(self, positions: np.ndarray) -> ForceResult:
        before = self.nlist.rebuild_count
        result = compute_forces_neighborlist(positions, self.nlist, dtype=self.dtype)
        if self.nlist.rebuild_count == before:
            self.reuse_count += 1
        return result


@register_backend("reference")
def _reference(box, potential, dtype, **options):
    if options:
        raise TypeError(f"'reference' takes no options, got {sorted(options)}")

    def backend(positions: np.ndarray) -> ForceResult:
        return compute_forces_reference(positions, box, potential)

    return backend


@register_backend("all-pairs")
def _all_pairs(box, potential, dtype, **options):
    block = int(options.pop("block", 256))
    if options:
        raise TypeError(f"'all-pairs' got unknown options {sorted(options)}")

    def backend(positions: np.ndarray) -> ForceResult:
        return compute_forces(positions, box, potential, dtype=dtype, block=block)

    return backend


@register_backend("27image")
def _27image(box, potential, dtype, **options):
    block = int(options.pop("block", 64))
    if options:
        raise TypeError(f"'27image' got unknown options {sorted(options)}")

    def backend(positions: np.ndarray) -> ForceResult:
        return compute_forces_27image(
            positions, box, potential, dtype=dtype, block=block
        )

    return backend


@register_backend("verlet")
def _verlet(box, potential, dtype, **options):
    skin = float(options.pop("skin", 0.3))
    if options:
        raise TypeError(f"'verlet' got unknown options {sorted(options)}")
    return VerletListForceBackend(box, potential, skin=skin, dtype=dtype)


@register_backend("cell")
def _cell(box, potential, dtype, **options):
    buffer = float(options.pop("buffer", 0.3))
    rebuild_check_delay = int(options.pop("rebuild_check_delay", 1))
    check_dist = bool(options.pop("check_dist", True))
    if options:
        raise TypeError(f"'cell' got unknown options {sorted(options)}")
    return CellListForceBackend(
        box,
        potential,
        buffer=buffer,
        dtype=dtype,
        rebuild_check_delay=rebuild_check_delay,
        check_dist=check_dist,
    )


# -- tunable knobs -----------------------------------------------------
#
# Declared here, consumed by Device.functional_backend: each backend's
# scheduling options map to a dotted knob name the tuner may search.
# None of these change the physics — block sizes only re-chunk the pair
# scan (reordering float reductions within shape-band tolerance), and
# skin/buffer/rebuild-delay only trade list rebuilds against extra
# candidate pairs; every neighbor inside the cutoff is still found.

register_tunable(TunableSpec(
    name="md.block",
    backend="md",
    kind="int",
    default=256,
    candidates=(64, 128, 256, 512, 1024),
    low=16,
    high=8192,
    description="row-block size of the all-pairs/27image pair scan",
    effect="larger blocks amortize Python loop overhead until the "
           "(block x N) distance matrix falls out of cache",
))
register_tunable(TunableSpec(
    name="md.skin",
    backend="md",
    kind="float",
    default=0.3,
    candidates=(0.1, 0.2, 0.3, 0.45, 0.6),
    low=0.01,
    high=2.0,
    description="Verlet neighbor-list skin radius (sigma units)",
    effect="thicker skin -> fewer rebuilds but more candidate pairs "
           "per force evaluation",
))
register_tunable(TunableSpec(
    name="md.cell_buffer",
    backend="md",
    kind="float",
    default=0.3,
    candidates=(0.1, 0.2, 0.3, 0.45, 0.6),
    low=0.01,
    high=2.0,
    description="linked-cell list buffer width (sigma units)",
    effect="wider buffer -> fewer cell rebuilds but larger cells to scan",
))
register_tunable(TunableSpec(
    name="md.rebuild_delay",
    backend="md",
    kind="int",
    default=1,
    candidates=(1, 2, 4, 8),
    low=1,
    high=64,
    description="steps between linked-cell displacement checks",
    effect="longer delay skips distance checks; the buffer still "
           "guarantees correctness between rebuilds",
))

#: force-backend name -> {factory option: knob name}; the hook
#: :func:`tuned_backend_options` uses to translate active tuned values
#: into factory keyword options.
TUNED_OPTION_MAP: dict[str, dict[str, str]] = {
    "all-pairs": {"block": "md.block"},
    "27image": {"block": "md.block"},
    "verlet": {"skin": "md.skin"},
    "cell": {"buffer": "md.cell_buffer", "rebuild_check_delay": "md.rebuild_delay"},
}


def tuned_backend_options(name: str, device: str | None = None) -> dict[str, object]:
    """Factory options for ``name`` from the active tuned config.

    Only knobs with an active tuned value appear; with no tuning in
    effect this is ``{}`` and every factory keeps its own defaults.
    """
    options: dict[str, object] = {}
    for option, knob in TUNED_OPTION_MAP.get(name, {}).items():
        value = tuned_value(knob, device)
        if value is not None:
            options[option] = value
    return options
