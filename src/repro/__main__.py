"""``python -m repro`` — run the full reproduction harness.

Delegates to :mod:`repro.experiments.runner`; pass ``--quick`` for the
reduced sweeps or ``--only <id>`` for a single artifact.
"""

from __future__ import annotations

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
