"""``python -m repro`` — run the full reproduction roster.

Delegates to :mod:`repro.experiments.runner`; pass ``--quick`` for the
reduced sweeps, ``--only <id>`` for a single artifact, or ``--list``
for the roster.  For parallel execution with cached, stored run
artifacts use ``python -m repro.harness`` instead.
"""

from __future__ import annotations

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
