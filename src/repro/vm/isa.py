"""Instruction set of the batched SIMD virtual machine.

The VM models a 128-bit (4-lane) SIMD register file like the Cell SPE's
(the GPU's 4-component pipelines and the scalar Opteron/MTA pipelines
reuse the same opcodes with their own cost tables and widths).  Each
*architectural* instruction executes elementwise over a **batch** of
loop iterations — the SPMD trick that lets a Python interpreter produce
exact per-iteration instruction streams at NumPy speed.

Functional semantics live here; *costs* (latency, issue pipe) live in
per-device :class:`CostTable` instances because the same opcode costs
different amounts on different machines.

Simplification, documented: the reciprocal/rsqrt *estimate* opcodes
(``frest``, ``frsqest``) compute the exact value rather than a 12-bit
estimate.  The kernels still carry their Newton-refinement instruction
sequences (that is what costs cycles); the functional result is simply
already converged.  This keeps VM outputs bit-comparable with the NumPy
reference kernels.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

__all__ = ["OpSpec", "CostTable", "OpCost", "OPS", "EVEN", "ODD"]

#: Issue-pipe tags, named after the SPE's dual pipes: EVEN carries
#: arithmetic, ODD carries loads/stores/shuffles/branches.
EVEN = "even"
ODD = "odd"


@dataclasses.dataclass(frozen=True)
class OpSpec:
    """Functional definition of one opcode."""

    name: str
    arity: int
    func: Callable[..., np.ndarray]
    uses_imm: bool = False


@dataclasses.dataclass(frozen=True)
class OpCost:
    """Cost of one opcode on one machine: result latency and issue pipe."""

    latency: int
    pipe: str = EVEN

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError(f"latency must be >= 1, got {self.latency}")
        if self.pipe not in (EVEN, ODD):
            raise ValueError(f"pipe must be 'even' or 'odd', got {self.pipe}")


@dataclasses.dataclass(frozen=True)
class CostTable:
    """Per-machine opcode cost table.

    ``issue_width`` is the number of instructions issued per cycle when
    pipes allow (2 for the SPE's dual-issue, 1 for single-issue cores).
    Unknown opcodes fall back to ``default`` so device tables only list
    what they care about.
    """

    name: str
    costs: dict[str, OpCost]
    issue_width: int = 1
    default: OpCost = OpCost(latency=1, pipe=EVEN)

    def cost(self, op: str) -> OpCost:
        return self.costs.get(op, self.default)


def _splat(src: np.ndarray, imm: int) -> np.ndarray:
    """Broadcast lane ``imm`` across all lanes."""
    return np.repeat(src[..., imm : imm + 1], src.shape[-1], axis=-1)


def _shuf(a: np.ndarray, b: np.ndarray, imm: tuple[int, ...]) -> np.ndarray:
    """General two-source lane permute; indices >= width select from b."""
    width = a.shape[-1]
    lanes = []
    for index in imm:
        if index < width:
            lanes.append(a[..., index])
        else:
            lanes.append(b[..., index - width])
    return np.stack(lanes, axis=-1)


def _rot_lanes(src: np.ndarray, imm: int) -> np.ndarray:
    """Rotate lanes left by ``imm`` (SPE rotqbyi analogue)."""
    return np.roll(src, -imm, axis=-1)


def _selb(a: np.ndarray, b: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Bitwise select: lane takes b where mask is 'true' (nonzero), else a."""
    return np.where(mask != 0, b, a)


def _il(template: np.ndarray, imm: float) -> np.ndarray:
    """Load immediate into every lane; template fixes shape/dtype."""
    return np.full_like(template, imm)


def _ilv(template: np.ndarray, imm: tuple[float, ...]) -> np.ndarray:
    """Load a per-lane immediate vector (e.g. an image-offset constant)."""
    out = np.empty_like(template)
    for lane, value in enumerate(imm):
        out[..., lane] = value
    if len(imm) < out.shape[-1]:
        out[..., len(imm) :] = 0.0
    return out


def _true_mask(cond: np.ndarray) -> np.ndarray:
    """Comparison results: 1.0 where true, 0.0 where false (all-lanes)."""
    return cond.astype(cond.dtype) if cond.dtype.kind == "f" else cond


def _cmp(func: Callable[[np.ndarray, np.ndarray], np.ndarray]):
    def wrapped(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return func(a, b).astype(a.dtype)

    return wrapped


#: The full opcode dictionary.  Arithmetic ops are elementwise over
#: (batch, width); data-movement ops manipulate lanes.
OPS: dict[str, OpSpec] = {
    spec.name: spec
    for spec in [
        # --- floating-point arithmetic (even pipe on SPE) ---
        OpSpec("fa", 2, lambda a, b: a + b),
        OpSpec("fs", 2, lambda a, b: a - b),
        OpSpec("fm", 2, lambda a, b: a * b),
        OpSpec("fma", 3, lambda a, b, c: a * b + c),
        OpSpec("fms", 3, lambda a, b, c: a * b - c),
        OpSpec("fnms", 3, lambda a, b, c: c - a * b),
        OpSpec("fdiv", 2, lambda a, b: a / b),  # real divide (Opteron/MTA)
        OpSpec("fsqrt", 1, lambda a: np.sqrt(a)),  # real sqrt (Opteron/MTA)
        OpSpec("frest", 1, lambda a: 1.0 / a),  # reciprocal estimate
        OpSpec("frsqest", 1, lambda a: 1.0 / np.sqrt(a)),  # rsqrt estimate
        OpSpec("fi", 2, lambda a, b: b),  # interpolate step of est. refinement
        OpSpec("fabs", 1, lambda a: np.abs(a)),
        OpSpec("fneg", 1, lambda a: -a),
        OpSpec("fmin", 2, lambda a, b: np.minimum(a, b)),
        OpSpec("fmax", 2, lambda a, b: np.maximum(a, b)),
        OpSpec("fround", 1, lambda a: np.round(a)),
        OpSpec("cpsgn", 2, lambda a, b: np.copysign(a, b)),
        # --- comparisons: produce 1.0/0.0 masks ---
        OpSpec("fcgt", 2, _cmp(lambda a, b: a > b)),
        OpSpec("fclt", 2, _cmp(lambda a, b: a < b)),
        OpSpec("fceq", 2, _cmp(lambda a, b: a == b)),
        # --- logical / select (odd pipe on SPE) ---
        OpSpec("selb", 3, _selb),
        OpSpec("and_", 2, lambda a, b: a * b),  # mask conjunction
        OpSpec("or_", 2, lambda a, b: np.maximum(a, b)),  # mask disjunction
        # --- data movement (odd pipe on SPE) ---
        OpSpec("mov", 1, lambda a: a.copy()),
        OpSpec("splat", 1, _splat, uses_imm=True),
        OpSpec("shufb", 2, _shuf, uses_imm=True),
        OpSpec("rotqbyi", 1, _rot_lanes, uses_imm=True),
        # --- immediates / loads / stores ---
        OpSpec("il", 1, _il, uses_imm=True),  # src fixes shape/dtype
        OpSpec("ilv", 1, _ilv, uses_imm=True),
        OpSpec("lqd", 1, lambda a: a.copy()),  # local-store load (costed)
        OpSpec("stqd", 1, lambda a: a.copy()),  # local-store store (costed)
        OpSpec("texfetch", 1, lambda a: a.copy()),  # GPU texture fetch
        OpSpec("nop", 0, None),
    ]
}
