"""The batched SIMD virtual machine: ISA, programs, scheduler, interpreter."""

from repro.vm.builder import Asm
from repro.vm.isa import EVEN, ODD, OPS, CostTable, OpCost, OpSpec
from repro.vm.machine import Machine, MachineError
from repro.vm.program import IfBlock, Instr, Loop, Program, Segment
from repro.vm.schedule import (
    CycleReport,
    SegmentCycles,
    estimate_cycles,
    straightline_cycles,
)

__all__ = [
    "Asm",
    "CostTable",
    "CycleReport",
    "EVEN",
    "IfBlock",
    "Instr",
    "Loop",
    "Machine",
    "MachineError",
    "ODD",
    "OPS",
    "OpCost",
    "OpSpec",
    "Program",
    "Segment",
    "SegmentCycles",
    "estimate_cycles",
    "straightline_cycles",
]
