"""The batched SIMD virtual machine: ISA, programs, scheduler, executors.

Execution comes in three interchangeable backends — the reference
interpreter, the per-segment codegen backend, and the whole-program
``fused`` backend with replica batching, all in
:mod:`repro.vm.compile` — chosen per :class:`Machine` (see
:func:`resolve_exec_backend`).
"""

from repro.vm.builder import Asm
from repro.vm.compile import (
    CompiledSegment,
    VMCompileError,
    compiled_program,
    compiled_segment,
)
from repro.vm.isa import EVEN, ODD, OPS, CostTable, OpCost, OpSpec
from repro.vm.machine import (
    EXEC_BACKENDS,
    BranchStat,
    Machine,
    MachineError,
    resolve_exec_backend,
)
from repro.vm.program import IfBlock, Instr, Loop, Program, Segment
from repro.vm.schedule import (
    CycleReport,
    SegmentCycles,
    estimate_cycles,
    straightline_cycles,
)

__all__ = [
    "Asm",
    "BranchStat",
    "CompiledSegment",
    "CostTable",
    "CycleReport",
    "EVEN",
    "EXEC_BACKENDS",
    "IfBlock",
    "Instr",
    "Loop",
    "Machine",
    "MachineError",
    "ODD",
    "OPS",
    "OpCost",
    "OpSpec",
    "Program",
    "Segment",
    "SegmentCycles",
    "VMCompileError",
    "compiled_program",
    "compiled_segment",
    "estimate_cycles",
    "resolve_exec_backend",
    "straightline_cycles",
]
