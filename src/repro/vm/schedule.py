"""Cycle estimation: an in-order, dual-issue pipeline model.

Given a :class:`~repro.vm.program.Program`, a per-machine
:class:`~repro.vm.isa.CostTable` and a metrics mapping (trip counts and
branch probabilities), this module produces a :class:`CycleReport` with
per-segment cycle totals.

The model is the classic in-order issue model:

* instructions issue in program order, at most ``issue_width`` per
  cycle and at most one per pipe per cycle;
* an instruction issues no earlier than the ready time of its operands
  (issue time + latency of the producer);
* loop iterations do not overlap (no software pipelining / no modulo
  scheduling) — deliberately conservative, matching the paper's note
  that the 2006 GNU toolchain was "unable to perform significant code
  optimization" for the SPEs;
* an :class:`IfBlock` charges its compare-and-branch always, its body
  and a taken-branch penalty weighted by the measured probability.

Because programs are data-independent apart from branch probabilities,
one scheduling pass per program gives exact per-trip cycle counts; the
device models then scale by trip counts that the functional MD run
measures.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro.vm.isa import CostTable
from repro.vm.program import IfBlock, Instr, Loop, Metrics, Node, Program

__all__ = [
    "SegmentCycles",
    "CycleReport",
    "IssueStats",
    "estimate_cycles",
    "issue_stats",
    "straightline_cycles",
    "count_issues",
]


@dataclasses.dataclass(frozen=True)
class SegmentCycles:
    """Cycle accounting for one program segment."""

    name: str
    trips: float
    cycles_per_trip: float
    total: float


@dataclasses.dataclass(frozen=True)
class CycleReport:
    """Cycle accounting for a whole program on one machine."""

    program: str
    machine: str
    segments: tuple[SegmentCycles, ...]

    @property
    def total_cycles(self) -> float:
        return sum(seg.total for seg in self.segments)

    def segment(self, name: str) -> SegmentCycles:
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise KeyError(f"no segment {name!r} in report for {self.program!r}")


class _PipelineState:
    """In-order issue bookkeeping for one straight-line run."""

    def __init__(self, table: CostTable) -> None:
        self.table = table
        self.ready: dict[str, int] = {}
        self.last_issue_cycle = -1
        self.pipes_at_last: set[str] = set()
        self.completion = 0
        #: cycles in which more than one instruction issued (observability
        #: tally only; never feeds back into the schedule)
        self.dual_issue_cycles = 0

    def issue(self, instr: Instr) -> None:
        cost = self.table.cost(instr.op)
        operands_ready = max(
            (self.ready.get(src, 0) for src in instr.srcs), default=0
        )
        t = max(operands_ready, self.last_issue_cycle)
        # In-order multi-issue: share a cycle with the previous
        # instruction only if width allows and the pipe is free.
        if t == self.last_issue_cycle and (
            len(self.pipes_at_last) >= self.table.issue_width
            or cost.pipe in self.pipes_at_last
        ):
            t += 1
        if t == self.last_issue_cycle and len(self.pipes_at_last) == 1:
            self.dual_issue_cycles += 1
        if t > self.last_issue_cycle:
            self.pipes_at_last = set()
        self.last_issue_cycle = t
        self.pipes_at_last.add(cost.pipe)
        finish = t + cost.latency
        if instr.dest is not None:
            self.ready[instr.dest] = finish
        self.completion = max(self.completion, finish)


def straightline_cycles(instrs: list[Instr], table: CostTable) -> float:
    """Cycles to fully execute a straight-line instruction run."""
    if not instrs:
        return 0.0
    state = _PipelineState(table)
    for instr in instrs:
        state.issue(instr)
    return float(state.completion)


def _nodes_cycles(nodes: tuple[Node, ...], table: CostTable, metrics: Metrics) -> float:
    """Cycles for a node sequence: schedule maximal straight-line runs,
    compose loops and conditionals additively (pipeline flushed at
    region boundaries — the conservative in-order assumption)."""
    total = 0.0
    run: list[Instr] = []

    def flush() -> None:
        nonlocal total
        if run:
            total += straightline_cycles(run, table)
            run.clear()

    for node in nodes:
        if isinstance(node, Instr):
            run.append(node)
        elif isinstance(node, Loop):
            flush()
            body = _nodes_cycles(node.body, table, metrics)
            total += node.count * (body + float(node.overhead_instrs))
        elif isinstance(node, IfBlock):
            flush()
            prob = float(metrics.get(node.prob_key, 0.0))
            if not 0.0 <= prob <= 1.0:
                raise ValueError(
                    f"branch probability {node.prob_key}={prob} outside [0, 1]"
                )
            body = _nodes_cycles(node.body, table, metrics)
            # one cycle for the branch, a fetch stall on every evaluation,
            # and body + flush penalty when taken
            total += (
                1.0
                + float(node.fetch_stall)
                + prob * (body + float(node.penalty))
            )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown node type {type(node)!r}")
    flush()
    return total


def _nodes_issues(
    nodes: tuple[Node, ...],
    metrics: Metrics,
    issue_slots: Mapping[str, float],
) -> float:
    total = 0.0
    for node in nodes:
        if isinstance(node, Instr):
            total += float(issue_slots.get(node.op, 1.0))
        elif isinstance(node, Loop):
            body = _nodes_issues(node.body, metrics, issue_slots)
            total += node.count * (body + float(node.overhead_instrs))
        elif isinstance(node, IfBlock):
            prob = float(metrics.get(node.prob_key, 0.0))
            body = _nodes_issues(node.body, metrics, issue_slots)
            total += 1.0 + prob * body
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown node type {type(node)!r}")
    return total


def count_issues(
    program: Program,
    metrics: Metrics,
    issue_slots: Mapping[str, float] | None = None,
) -> float:
    """Total instruction-issue slots a program consumes.

    This is the cost measure for latency-tolerant machines (the MTA-2):
    with enough concurrent streams, per-instruction latency is hidden
    and throughput is one issue per cycle, so time = issues / rate.
    ``issue_slots`` maps opcodes that decompose into multi-instruction
    sequences (software divide/sqrt) to their slot counts; unlisted
    opcodes cost one slot.
    """
    issue_slots = issue_slots or {}
    total = 0.0
    for seg in program.segments:
        if seg.trips_key not in metrics:
            raise KeyError(
                f"metrics missing trip key {seg.trips_key!r} for segment "
                f"{seg.name!r} of program {program.name!r}"
            )
        trips = float(metrics[seg.trips_key])
        total += trips * _nodes_issues(seg.body, metrics, issue_slots)
    return total


@dataclasses.dataclass(frozen=True)
class IssueStats:
    """Hardware-counter-grade statistics of one scheduled program run.

    All fields are expectations over the measured branch probabilities
    (an ``IfBlock`` body counts weighted by P(taken)), scaled by the
    segment trip counts — the same accounting :func:`estimate_cycles`
    uses, broken out for observability instead of summed into seconds.
    """

    #: instructions issued (IfBlock compare-and-branch included)
    instructions: float
    #: scheduled cycles (identical to ``estimate_cycles().total_cycles``)
    cycles: float
    #: cycles that retired two instructions (even+odd pipe together)
    dual_issue_cycles: float
    #: data-dependent branch evaluations
    branch_evals: float
    #: expected taken branches (evals weighted by measured P(taken))
    branch_taken: float
    #: expected pipeline-flush cycles from taken branches
    branch_flush_cycles: float

    def scaled(self, factor: float) -> "IssueStats":
        return IssueStats(
            *(getattr(self, f.name) * factor for f in dataclasses.fields(self))
        )

    def __add__(self, other: "IssueStats") -> "IssueStats":
        return IssueStats(
            *(
                getattr(self, f.name) + getattr(other, f.name)
                for f in dataclasses.fields(self)
            )
        )


_ZERO_STATS = None  # populated lazily below


def _zero_stats() -> IssueStats:
    global _ZERO_STATS
    if _ZERO_STATS is None:
        _ZERO_STATS = IssueStats(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return _ZERO_STATS


def _straightline_stats(instrs: list[Instr], table: CostTable) -> IssueStats:
    if not instrs:
        return _zero_stats()
    state = _PipelineState(table)
    for instr in instrs:
        state.issue(instr)
    return IssueStats(
        instructions=float(len(instrs)),
        cycles=float(state.completion),
        dual_issue_cycles=float(state.dual_issue_cycles),
        branch_evals=0.0,
        branch_taken=0.0,
        branch_flush_cycles=0.0,
    )


def _nodes_stats(
    nodes: tuple[Node, ...], table: CostTable, metrics: Metrics
) -> IssueStats:
    """Mirror of :func:`_nodes_cycles` accumulating full issue statistics."""
    total = _zero_stats()
    run: list[Instr] = []

    def flush() -> IssueStats:
        nonlocal total
        if run:
            total = total + _straightline_stats(run, table)
            run.clear()
        return total

    for node in nodes:
        if isinstance(node, Instr):
            run.append(node)
        elif isinstance(node, Loop):
            flush()
            body = _nodes_stats(node.body, table, metrics)
            overhead = IssueStats(
                instructions=float(node.overhead_instrs),
                cycles=float(node.overhead_instrs),
                dual_issue_cycles=0.0,
                branch_evals=0.0,
                branch_taken=0.0,
                branch_flush_cycles=0.0,
            )
            total = total + (body + overhead).scaled(float(node.count))
        elif isinstance(node, IfBlock):
            flush()
            prob = float(metrics.get(node.prob_key, 0.0))
            if not 0.0 <= prob <= 1.0:
                raise ValueError(
                    f"branch probability {node.prob_key}={prob} outside [0, 1]"
                )
            body = _nodes_stats(node.body, table, metrics)
            branch = IssueStats(
                instructions=1.0,
                cycles=1.0 + float(node.fetch_stall) + prob * float(node.penalty),
                dual_issue_cycles=0.0,
                branch_evals=1.0,
                branch_taken=prob,
                branch_flush_cycles=prob * float(node.penalty),
            )
            total = total + branch + body.scaled(prob)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown node type {type(node)!r}")
    flush()
    return total


def issue_stats(
    program: Program, table: CostTable, metrics: Metrics
) -> IssueStats:
    """Full issue statistics for ``program`` over the given workload.

    ``.cycles`` agrees with :func:`estimate_cycles` by construction (the
    same pipeline model runs underneath); the other fields expose what
    that model knows but the seconds-only path discards — the dual-issue
    rate and the branch-miss machinery of the paper's Figure 5 analysis.
    """
    total = _zero_stats()
    for seg in program.segments:
        if seg.trips_key not in metrics:
            raise KeyError(
                f"metrics missing trip key {seg.trips_key!r} for segment "
                f"{seg.name!r} of program {program.name!r}"
            )
        trips = float(metrics[seg.trips_key])
        if trips < 0:
            raise ValueError(f"trip count {seg.trips_key}={trips} negative")
        total = total + _nodes_stats(seg.body, table, metrics).scaled(trips)
    return total


def estimate_cycles(
    program: Program, table: CostTable, metrics: Metrics
) -> CycleReport:
    """Cycle report for ``program`` on the machine described by ``table``.

    ``metrics`` must contain every segment trip key and every IfBlock
    probability key the program references.
    """
    segments = []
    for seg in program.segments:
        if seg.trips_key not in metrics:
            raise KeyError(
                f"metrics missing trip key {seg.trips_key!r} for segment "
                f"{seg.name!r} of program {program.name!r}"
            )
        trips = float(metrics[seg.trips_key])
        if trips < 0:
            raise ValueError(f"trip count {seg.trips_key}={trips} negative")
        per_trip = _nodes_cycles(seg.body, table, metrics)
        segments.append(
            SegmentCycles(
                name=seg.name,
                trips=trips,
                cycles_per_trip=per_trip,
                total=trips * per_trip,
            )
        )
    return CycleReport(
        program=program.name, machine=table.name, segments=tuple(segments)
    )
