"""A tiny assembler-style DSL for writing VM kernels.

Device kernels (``repro.cell.kernels``, ``repro.gpu.kernels``) are long
instruction lists; writing raw :class:`~repro.vm.program.Instr` tuples
is noisy.  :class:`Asm` provides one method per opcode returning the
node, plus helpers for loops and conditionals, so kernels read like
annotated assembly listings::

    a = Asm()
    body = [
        a.fs("d", "xi", "xj"),          # d = xi - xj
        a.fm("d2", "d", "d"),
        *a.hsum3("r2", "d2", tmp="t"),  # r2 = d2.x + d2.y + d2.z
    ]
"""

from __future__ import annotations

from repro.vm.program import IfBlock, Instr, Loop, Node

__all__ = ["Asm"]


class Asm:
    """Instruction factory; every opcode is a method."""

    # --- arithmetic ---
    def fa(self, dest: str, a: str, b: str) -> Instr:
        return Instr("fa", dest, (a, b))

    def fs(self, dest: str, a: str, b: str) -> Instr:
        return Instr("fs", dest, (a, b))

    def fm(self, dest: str, a: str, b: str) -> Instr:
        return Instr("fm", dest, (a, b))

    def fma(self, dest: str, a: str, b: str, c: str) -> Instr:
        return Instr("fma", dest, (a, b, c))

    def fms(self, dest: str, a: str, b: str, c: str) -> Instr:
        return Instr("fms", dest, (a, b, c))

    def fnms(self, dest: str, a: str, b: str, c: str) -> Instr:
        return Instr("fnms", dest, (a, b, c))

    def fdiv(self, dest: str, a: str, b: str) -> Instr:
        return Instr("fdiv", dest, (a, b))

    def fsqrt(self, dest: str, a: str) -> Instr:
        return Instr("fsqrt", dest, (a,))

    def frest(self, dest: str, a: str) -> Instr:
        return Instr("frest", dest, (a,))

    def frsqest(self, dest: str, a: str) -> Instr:
        return Instr("frsqest", dest, (a,))

    def fi(self, dest: str, a: str, b: str) -> Instr:
        return Instr("fi", dest, (a, b))

    def fabs(self, dest: str, a: str) -> Instr:
        return Instr("fabs", dest, (a,))

    def fneg(self, dest: str, a: str) -> Instr:
        return Instr("fneg", dest, (a,))

    def fmin(self, dest: str, a: str, b: str) -> Instr:
        return Instr("fmin", dest, (a, b))

    def fmax(self, dest: str, a: str, b: str) -> Instr:
        return Instr("fmax", dest, (a, b))

    def fround(self, dest: str, a: str) -> Instr:
        return Instr("fround", dest, (a,))

    def cpsgn(self, dest: str, a: str, b: str) -> Instr:
        return Instr("cpsgn", dest, (a, b))

    # --- comparisons / select / logic ---
    def fcgt(self, dest: str, a: str, b: str) -> Instr:
        return Instr("fcgt", dest, (a, b))

    def fclt(self, dest: str, a: str, b: str) -> Instr:
        return Instr("fclt", dest, (a, b))

    def fceq(self, dest: str, a: str, b: str) -> Instr:
        return Instr("fceq", dest, (a, b))

    def selb(self, dest: str, a: str, b: str, mask: str) -> Instr:
        return Instr("selb", dest, (a, b, mask))

    def and_(self, dest: str, a: str, b: str) -> Instr:
        return Instr("and_", dest, (a, b))

    def or_(self, dest: str, a: str, b: str) -> Instr:
        return Instr("or_", dest, (a, b))

    # --- data movement ---
    def mov(self, dest: str, a: str) -> Instr:
        return Instr("mov", dest, (a,))

    def splat(self, dest: str, a: str, lane: int) -> Instr:
        return Instr("splat", dest, (a,), imm=lane)

    def shufb(self, dest: str, a: str, b: str, pattern: tuple[int, ...]) -> Instr:
        return Instr("shufb", dest, (a, b), imm=pattern)

    def rot(self, dest: str, a: str, lanes: int) -> Instr:
        return Instr("rotqbyi", dest, (a,), imm=lanes)

    def il(self, dest: str, template: str, value) -> Instr:
        return Instr("il", dest, (template,), imm=value)

    def ilv(self, dest: str, template: str, values) -> Instr:
        return Instr("ilv", dest, (template,), imm=values)

    def lqd(self, dest: str, a: str) -> Instr:
        return Instr("lqd", dest, (a,))

    def stqd(self, dest: str, a: str) -> Instr:
        return Instr("stqd", dest, (a,))

    def texfetch(self, dest: str, a: str) -> Instr:
        return Instr("texfetch", dest, (a,))

    def nop(self) -> Instr:
        return Instr("nop", None, ())

    # --- structure ---
    def loop(self, count: int, body: list[Node], overhead: int = 2) -> Loop:
        return Loop(count=count, body=tuple(body), overhead_instrs=overhead)

    def if_(
        self,
        cond: str,
        body: list[Node],
        prob_key: str,
        penalty: int = 18,
        fetch_stall: int = 4,
    ) -> IfBlock:
        return IfBlock(
            cond=cond,
            body=tuple(body),
            prob_key=prob_key,
            penalty=penalty,
            fetch_stall=fetch_stall,
        )

    # --- composite idioms ---
    def hsum3(self, dest: str, src: str, tmp: str) -> list[Instr]:
        """Horizontal sum of lanes 0..2 into all lanes of ``dest``.

        The SPE has no horizontal add; real code rotates and adds.  Three
        odd-pipe rotates/shuffles + two even-pipe adds, as on hardware.
        """
        return [
            self.rot(tmp, src, 1),          # [y, z, w, x]
            self.fa(dest, src, tmp),        # [x+y, ...]
            self.rot(tmp, src, 2),          # [z, w, x, y]
            self.fa(dest, dest, tmp),       # lane0 = x+y+z
            self.splat(dest, dest, 0),
        ]

    def rsqrt_refined(self, dest: str, src: str, tmp: str, half: str, three: str) -> list[Instr]:
        """Full-precision 1/sqrt via estimate + one Newton-Raphson step.

        ``half`` and ``three`` must already hold 0.5 and 3.0.
        y1 = y0 * 0.5 * (3 - x * y0^2)
        """
        return [
            self.frsqest(dest, src),
            self.fm(tmp, dest, dest),        # y0^2
            self.fnms(tmp, src, tmp, three),  # 3 - x*y0^2
            self.fm(tmp, tmp, half),          # 0.5*(3 - x*y0^2)
            self.fm(dest, dest, tmp),         # y0 * ...
        ]

    def recip_refined(self, dest: str, src: str, tmp: str, two: str) -> list[Instr]:
        """Full-precision reciprocal via estimate + one Newton step.

        ``two`` must already hold 2.0.  y1 = y0 * (2 - x * y0)
        """
        return [
            self.frest(dest, src),
            self.fnms(tmp, src, dest, two),  # 2 - x*y0
            self.fm(dest, dest, tmp),
        ]
