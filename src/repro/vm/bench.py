"""Kernel-throughput measurement for the VM execution backends.

One shared implementation feeds both the pytest microbenchmarks
(``benchmarks/test_kernel_throughput.py``) and the machine-readable
perf trajectory (``scripts/record_bench.py`` -> ``BENCH_vm.json``), so
the numbers in CI artifacts and local runs come from the same code.

The measured quantity is *pairs per second through the VM executor*:
``Machine.run_segment`` on a prepared pair batch, which isolates the
execution backend from the driver-side batch materialization (building
``xi``/``xj`` is identical work under either backend).  The batch is
sized like an SPE-resident tile (1024 pairs) — the regime the paper's
kernels actually run in — rather than a whole-sweep mega-batch, where
any executor is memory-bandwidth-bound.  Every kernel is measured
under both backends on identical inputs; since the backends are
bit-identical (see ``tests/vm/test_compile.py``), any throughput
difference is pure executor speed.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Iterable

import numpy as np

from repro.cell.kernels import (
    OPT_LEVELS,
    build_spe_kernel,
    build_spe_timestep_kernel,
    kernel_constants,
    timestep_constants,
)
from repro.gpu.kernels import build_md_shader, shader_constants
from repro.md.lj import LennardJones
from repro.vm.machine import Machine

__all__ = [
    "EnsembleBench",
    "KernelBench",
    "bench_ensemble",
    "bench_kernels",
    "default_kernels",
    "ensemble_speedups",
    "speedups",
    "timestep_env",
]

BOX_LENGTH = 8.0

#: Kernel ids: the fig5 optimization ladder plus the GPU pair shader.
SPE_KERNELS = tuple(f"spe:{level}" for level in OPT_LEVELS)
GPU_KERNELS = ("gpu:md_shader",)


def default_kernels() -> tuple[str, ...]:
    return SPE_KERNELS + GPU_KERNELS


@dataclasses.dataclass(frozen=True)
class KernelBench:
    """One (kernel, backend) measurement."""

    kernel: str
    backend: str
    pairs: int
    repeats: int
    best_seconds: float

    @property
    def pairs_per_second(self) -> float:
        return self.pairs / self.best_seconds

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "backend": self.backend,
            "pairs": self.pairs,
            "repeats": self.repeats,
            "best_seconds": self.best_seconds,
            "pairs_per_second": self.pairs_per_second,
        }


def _pair_env(machine: Machine, batch: int, constants: dict[str, float],
              extra: dict[str, float]) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(0)
    xi = rng.uniform(0.0, BOX_LENGTH, size=(batch, 3)).astype(np.float32)
    xj = rng.uniform(0.0, BOX_LENGTH, size=(batch, 3)).astype(np.float32)
    env = {"xi": machine.load_vec3(xi), "xj": machine.load_vec3(xj)}
    for name, value in constants.items():
        env[name] = machine.make_register(batch, float(value))
    for name, value in extra.items():
        env[name] = machine.make_register(batch, float(value))
    env["self_flag"] = machine.make_register(batch, 0.0)
    return env


def _make_runner(kernel: str, backend: str, batch: int):
    """A zero-argument callable executing one pair segment of ``batch`` pairs."""
    potential = LennardJones()
    machine = Machine(width=4, dtype=np.float32, exec_backend=backend)
    if kernel.startswith("spe:"):
        level = kernel.split(":", 1)[1]
        program = build_spe_kernel(level, box_length=BOX_LENGTH)
        env = _pair_env(machine, batch, kernel_constants(potential),
                        extra={"zero": 0.0})
    elif kernel == "gpu:md_shader":
        program = build_md_shader(box_length=BOX_LENGTH).program
        env = _pair_env(machine, batch,
                        shader_constants(potential, BOX_LENGTH),
                        extra={"zero": 0.0, "tiny": 1.0e-12})
    else:
        raise ValueError(f"unknown benchmark kernel {kernel!r}")

    def run():
        # Fresh dict per call (interp writes every register into it);
        # the arrays themselves are shared — neither backend mutates
        # its inputs in place.
        return machine.run_segment(program, "pair", dict(env))

    return run


def bench_kernels(
    kernels: Iterable[str] | None = None,
    backends: Iterable[str] = ("interp", "compiled"),
    batch: int = 1024,
    repeats: int = 3,
) -> list[KernelBench]:
    """Best-of-``repeats`` wall time per (kernel, backend), same inputs.

    The first (untimed) call absorbs one-time costs — segment
    compilation, buffer-pool population — so the steady state is what
    gets measured, mirroring how the drivers amortize those costs over
    a sweep.
    """
    results = []
    for kernel in kernels if kernels is not None else default_kernels():
        for backend in backends:
            run = _make_runner(kernel, backend, batch)
            run()  # warm-up: compile + allocate outside the timed region
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                run()
                best = min(best, time.perf_counter() - start)
            results.append(KernelBench(
                kernel=kernel,
                backend=backend,
                pairs=batch,
                repeats=repeats,
                best_seconds=best,
            ))
    return results


@dataclasses.dataclass(frozen=True)
class EnsembleBench:
    """One (replica count, execution mode) whole-timestep measurement."""

    mode: str  # "compiled-sequential" | "fused-batched"
    replicas: int
    rows_per_replica: int
    repeats: int
    best_seconds: float

    @property
    def replicas_per_second(self) -> float:
        return self.replicas / self.best_seconds

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "replicas": self.replicas,
            "rows_per_replica": self.rows_per_replica,
            "repeats": self.repeats,
            "best_seconds": self.best_seconds,
            "replicas_per_second": self.replicas_per_second,
        }


def timestep_env(
    machine: Machine, batch: int, constants: dict[str, float]
) -> dict[str, np.ndarray]:
    """A whole-timestep env: ``batch`` independent dimer-pair rows."""
    rng = np.random.default_rng(1)
    xi = rng.uniform(0.0, BOX_LENGTH, size=(batch, 3)).astype(np.float32)
    xj = (xi + rng.uniform(-1.5, 1.5, size=(batch, 3))).astype(np.float32)
    vi = rng.uniform(-0.1, 0.1, size=(batch, 3)).astype(np.float32)
    env = {
        "xi": machine.load_vec3(xi),
        "xj": machine.load_vec3(xj),
        "vi": machine.load_vec3(vi),
    }
    for name, value in constants.items():
        env[name] = machine.make_register(batch, float(value))
    env["zero"] = machine.make_register(batch, 0.0)
    env["self_flag"] = machine.make_register(batch, 0.0)
    return env


#: (mode label, exec backend) pairs the ensemble benchmark compares: the
#: PR-3 compiled backend looping replica by replica, vs one fused
#: whole-program closure over the replica-stacked batch.
ENSEMBLE_MODES = (
    ("compiled-sequential", "compiled"),
    ("fused-batched", "fused"),
)


def bench_ensemble(
    replica_counts: Iterable[int] = (1, 2, 4, 8, 16),
    rows_per_replica: int = 256,
    repeats: int = 3,
) -> list[EnsembleBench]:
    """Replicas/sec through one whole SPE timestep, per execution mode.

    Each replica is ``rows_per_replica`` independent dimer systems; the
    batch stacks R replicas along the row axis.  ``compiled-sequential``
    is :meth:`Machine.run_program` on the compiled backend (loops
    replica by replica over row slices — the PR-3 execution model);
    ``fused-batched`` runs the same batch through one whole-program
    closure.  Outputs are bit-identical (``tests/vm/test_fused.py``), so
    the ratio is pure dispatch/vectorization win.
    """
    program = build_spe_timestep_kernel("simd_acceleration", BOX_LENGTH)
    constants = timestep_constants(LennardJones(), dt=0.005)
    results = []
    for replicas in replica_counts:
        batch = replicas * rows_per_replica
        for mode, backend in ENSEMBLE_MODES:
            machine = Machine(width=4, dtype=np.float32, exec_backend=backend)
            env = timestep_env(machine, batch, constants)

            def run():
                # Fresh dict per call: replica merging rebinds output
                # names; the input arrays themselves are never mutated.
                return machine.run_program(program, dict(env), replicas=replicas)

            run()  # warm-up: compile + pool allocation untimed
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                run()
                best = min(best, time.perf_counter() - start)
            results.append(EnsembleBench(
                mode=mode,
                replicas=replicas,
                rows_per_replica=rows_per_replica,
                repeats=repeats,
                best_seconds=best,
            ))
    return results


def ensemble_speedups(results: Iterable[EnsembleBench]) -> dict[int, float]:
    """fused-batched / compiled-sequential replicas-per-second, per R."""
    by_key = {(r.replicas, r.mode): r for r in results}
    ratios = {}
    for (replicas, mode), result in by_key.items():
        if mode != "fused-batched":
            continue
        baseline = by_key.get((replicas, "compiled-sequential"))
        if baseline is not None:
            ratios[replicas] = (
                result.replicas_per_second / baseline.replicas_per_second
            )
    return ratios


def speedups(results: Iterable[KernelBench]) -> dict[str, float]:
    """compiled/interp throughput ratio per kernel (where both ran)."""
    by_key = {(r.kernel, r.backend): r for r in results}
    ratios = {}
    for (kernel, backend), result in by_key.items():
        if backend != "compiled":
            continue
        interp = by_key.get((kernel, "interp"))
        if interp is not None:
            ratios[kernel] = result.pairs_per_second / interp.pairs_per_second
    return ratios
