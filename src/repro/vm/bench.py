"""Kernel-throughput measurement for the VM execution backends.

One shared implementation feeds both the pytest microbenchmarks
(``benchmarks/test_kernel_throughput.py``) and the machine-readable
perf trajectory (``scripts/record_bench.py`` -> ``BENCH_vm.json``), so
the numbers in CI artifacts and local runs come from the same code.

The measured quantity is *pairs per second through the VM executor*:
``Machine.run_segment`` on a prepared pair batch, which isolates the
execution backend from the driver-side batch materialization (building
``xi``/``xj`` is identical work under either backend).  The batch is
sized like an SPE-resident tile (1024 pairs) — the regime the paper's
kernels actually run in — rather than a whole-sweep mega-batch, where
any executor is memory-bandwidth-bound.  Every kernel is measured
under both backends on identical inputs; since the backends are
bit-identical (see ``tests/vm/test_compile.py``), any throughput
difference is pure executor speed.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Iterable

import numpy as np

from repro.cell.kernels import OPT_LEVELS, build_spe_kernel, kernel_constants
from repro.gpu.kernels import build_md_shader, shader_constants
from repro.md.lj import LennardJones
from repro.vm.machine import Machine

__all__ = ["KernelBench", "bench_kernels", "default_kernels", "speedups"]

BOX_LENGTH = 8.0

#: Kernel ids: the fig5 optimization ladder plus the GPU pair shader.
SPE_KERNELS = tuple(f"spe:{level}" for level in OPT_LEVELS)
GPU_KERNELS = ("gpu:md_shader",)


def default_kernels() -> tuple[str, ...]:
    return SPE_KERNELS + GPU_KERNELS


@dataclasses.dataclass(frozen=True)
class KernelBench:
    """One (kernel, backend) measurement."""

    kernel: str
    backend: str
    pairs: int
    repeats: int
    best_seconds: float

    @property
    def pairs_per_second(self) -> float:
        return self.pairs / self.best_seconds

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "backend": self.backend,
            "pairs": self.pairs,
            "repeats": self.repeats,
            "best_seconds": self.best_seconds,
            "pairs_per_second": self.pairs_per_second,
        }


def _pair_env(machine: Machine, batch: int, constants: dict[str, float],
              extra: dict[str, float]) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(0)
    xi = rng.uniform(0.0, BOX_LENGTH, size=(batch, 3)).astype(np.float32)
    xj = rng.uniform(0.0, BOX_LENGTH, size=(batch, 3)).astype(np.float32)
    env = {"xi": machine.load_vec3(xi), "xj": machine.load_vec3(xj)}
    for name, value in constants.items():
        env[name] = machine.make_register(batch, float(value))
    for name, value in extra.items():
        env[name] = machine.make_register(batch, float(value))
    env["self_flag"] = machine.make_register(batch, 0.0)
    return env


def _make_runner(kernel: str, backend: str, batch: int):
    """A zero-argument callable executing one pair segment of ``batch`` pairs."""
    potential = LennardJones()
    machine = Machine(width=4, dtype=np.float32, exec_backend=backend)
    if kernel.startswith("spe:"):
        level = kernel.split(":", 1)[1]
        program = build_spe_kernel(level, box_length=BOX_LENGTH)
        env = _pair_env(machine, batch, kernel_constants(potential),
                        extra={"zero": 0.0})
    elif kernel == "gpu:md_shader":
        program = build_md_shader(box_length=BOX_LENGTH).program
        env = _pair_env(machine, batch,
                        shader_constants(potential, BOX_LENGTH),
                        extra={"zero": 0.0, "tiny": 1.0e-12})
    else:
        raise ValueError(f"unknown benchmark kernel {kernel!r}")

    def run():
        # Fresh dict per call (interp writes every register into it);
        # the arrays themselves are shared — neither backend mutates
        # its inputs in place.
        return machine.run_segment(program, "pair", dict(env))

    return run


def bench_kernels(
    kernels: Iterable[str] | None = None,
    backends: Iterable[str] = ("interp", "compiled"),
    batch: int = 1024,
    repeats: int = 3,
) -> list[KernelBench]:
    """Best-of-``repeats`` wall time per (kernel, backend), same inputs.

    The first (untimed) call absorbs one-time costs — segment
    compilation, buffer-pool population — so the steady state is what
    gets measured, mirroring how the drivers amortize those costs over
    a sweep.
    """
    results = []
    for kernel in kernels if kernels is not None else default_kernels():
        for backend in backends:
            run = _make_runner(kernel, backend, batch)
            run()  # warm-up: compile + allocate outside the timed region
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                run()
                best = min(best, time.perf_counter() - start)
            results.append(KernelBench(
                kernel=kernel,
                backend=backend,
                pairs=batch,
                repeats=repeats,
                best_seconds=best,
            ))
    return results


def speedups(results: Iterable[KernelBench]) -> dict[str, float]:
    """compiled/interp throughput ratio per kernel (where both ran)."""
    by_key = {(r.kernel, r.backend): r for r in results}
    ratios = {}
    for (kernel, backend), result in by_key.items():
        if backend != "compiled":
            continue
        interp = by_key.get((kernel, "interp"))
        if interp is not None:
            ratios[kernel] = result.pairs_per_second / interp.pairs_per_second
    return ratios
