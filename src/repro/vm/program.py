"""Program representation for the batched SIMD VM.

A :class:`Program` is a sequence of :class:`Segment` s.  Each segment's
body executes once per unit of its *trip key* — a named quantity
("pairs", "atoms", …) resolved against a :class:`Metrics` mapping at
cost-estimation time.  Inside a body three node kinds may appear:

* :class:`Instr` — one architectural instruction;
* :class:`Loop` — a fixed-trip inner loop (the 3- or 9-iteration image
  searches); functional execution really iterates, cost = trips x body;
* :class:`IfBlock` — a data-dependent branch.  Functional execution is
  predicated (lanes where the condition is false keep their old values);
  the cost model charges the body weighted by the branch probability
  plus a taken-branch penalty on machines without branch prediction.
  Branch probabilities are *measured* — either during functional
  execution or from the NumPy kernel's pair statistics — never guessed.

The same program therefore yields (a) real numerics and (b) an exact
instruction-issue stream for the cycle model.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Mapping, Union

__all__ = ["Instr", "Loop", "IfBlock", "Segment", "Program", "Metrics", "Node"]

Metrics = Mapping[str, float]


@dataclasses.dataclass(frozen=True)
class Instr:
    """One architectural instruction: ``dest = op(*srcs, imm)``."""

    op: str
    dest: str | None
    srcs: tuple[str, ...] = ()
    imm: object | None = None

    def __post_init__(self) -> None:
        from repro.vm.isa import OPS

        if self.op not in OPS:
            raise ValueError(f"unknown opcode {self.op!r}")
        spec = OPS[self.op]
        if len(self.srcs) != spec.arity:
            raise ValueError(
                f"{self.op} expects {spec.arity} sources, got {len(self.srcs)}"
            )
        if spec.uses_imm and self.imm is None:
            raise ValueError(f"{self.op} requires an immediate")


@dataclasses.dataclass(frozen=True)
class Loop:
    """A fixed-trip-count inner loop with per-iteration overhead.

    ``overhead_instrs`` models the scalar loop bookkeeping (counter
    update + compare + branch) that the SIMDized kernels eliminate; it
    is charged per iteration on the odd (branch) pipe.
    """

    count: int
    body: tuple["Node", ...]
    overhead_instrs: int = 2

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"loop count must be >= 1, got {self.count}")
        if self.overhead_instrs < 0:
            raise ValueError("overhead_instrs must be >= 0")


@dataclasses.dataclass(frozen=True)
class IfBlock:
    """A data-dependent conditional region guarded by mask register ``cond``.

    ``prob_key`` names the metric holding P(taken).  ``penalty`` is the
    extra cycles charged per taken branch on machines with no branch
    prediction (SPE) or per mispredict on predicting machines.
    ``fetch_stall`` is charged on *every* evaluation: an unhinted
    conditional branch interrupts the SPU's sequential fetch for a few
    cycles even when it falls through — this is exactly the cost the
    paper's "replace an if test with copysign" optimization removes.
    """

    cond: str
    body: tuple["Node", ...]
    prob_key: str
    penalty: int = 18
    fetch_stall: int = 4

    def __post_init__(self) -> None:
        if self.penalty < 0:
            raise ValueError("penalty must be >= 0")
        if self.fetch_stall < 0:
            raise ValueError("fetch_stall must be >= 0")


Node = Union[Instr, Loop, IfBlock]


@dataclasses.dataclass(frozen=True)
class Segment:
    """A region executed ``metrics[trips_key]`` times."""

    name: str
    trips_key: str
    body: tuple[Node, ...]


@dataclasses.dataclass(frozen=True)
class Program:
    """A named kernel: ordered segments plus declared I/O registers."""

    name: str
    segments: tuple[Segment, ...]
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()

    def segment(self, name: str) -> Segment:
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise KeyError(f"program {self.name!r} has no segment {name!r}")

    def instruction_count(self) -> int:
        """Static instruction count (loop bodies counted once)."""
        return sum(_count_nodes(seg.body) for seg in self.segments)

    def registers(self) -> set[str]:
        """Every register name the program reads or writes."""
        regs: set[str] = set(self.inputs) | set(self.outputs)
        for seg in self.segments:
            for node in _walk(seg.body):
                if isinstance(node, Instr):
                    regs.update(node.srcs)
                    if node.dest is not None:
                        regs.add(node.dest)
                elif isinstance(node, IfBlock):
                    regs.add(node.cond)
        return regs

    def validate(self) -> None:
        """Check def-before-use treating ``inputs`` as pre-defined.

        Registers first defined inside a Loop or IfBlock are accepted as
        loop-carried only if also written before the region; a plain
        first-use-inside-If of an undefined register is an error.
        """
        defined = set(self.inputs)
        _check_defs(
            tuple(node for seg in self.segments for node in seg.body), defined
        )
        missing = set(self.outputs) - defined
        if missing:
            raise ValueError(
                f"program {self.name!r} never defines outputs {sorted(missing)}"
            )


def _check_defs(nodes: tuple[Node, ...], defined: set[str]) -> None:
    for node in nodes:
        if isinstance(node, Instr):
            unknown = [s for s in node.srcs if s not in defined]
            if unknown:
                raise ValueError(
                    f"instruction {node.op} reads undefined registers {unknown}"
                )
            if node.dest is not None:
                defined.add(node.dest)
        elif isinstance(node, Loop):
            _check_defs(node.body, defined)
        elif isinstance(node, IfBlock):
            if node.cond not in defined:
                raise ValueError(f"IfBlock condition {node.cond!r} undefined")
            _check_defs(node.body, defined)


def _walk(nodes: tuple[Node, ...]) -> Iterator[Node]:
    for node in nodes:
        yield node
        if isinstance(node, Loop):
            yield from _walk(node.body)
        elif isinstance(node, IfBlock):
            yield from _walk(node.body)


def _count_nodes(nodes: tuple[Node, ...]) -> int:
    total = 0
    for node in _walk(nodes):
        if isinstance(node, Instr):
            total += 1
    return total
