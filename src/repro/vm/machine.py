"""Functional execution of the batched SIMD VM.

:class:`Machine` executes a program's segment bodies over a *batch*:
every register is an ``(batch, width)`` array and each instruction is
applied elementwise, so one architectural instruction performs the work
of ``batch`` iterations.  This gives real numerics (the device tests
compare VM force output against the NumPy reference kernels) while the
instruction stream stays exact for the cycle model.

Three execution backends share the instruction semantics:

* ``interp`` — the per-instruction interpreter below: one dict dispatch
  and one fresh result array per instruction.  Every register the
  program writes lands in ``env``, which makes it the debugging and
  reference backend.
* ``compiled`` — :mod:`repro.vm.compile` lowers the segment once to a
  fused straight-line NumPy closure (loops unrolled, constants hoisted,
  register slots liveness-reused via ``out=`` kernels) and caches it.
  Bit-identical results and branch statistics, several times faster;
  only the segment's *declared outputs* are written back to ``env``.
* ``fused`` — whole-*program* compilation: :meth:`Machine.run_program`
  executes every segment through one closure with no per-segment
  dispatch, and a batched replica axis lets R independent replicas run
  through a single vectorized call (:meth:`Machine.run_program` with
  ``replicas=R``).  Per-segment execution (:meth:`run_segment`) under
  ``fused`` falls back to the per-segment compiled closure — the two
  granularities only differ when a caller hands over a whole program.

The backend is chosen per :class:`Machine` via ``exec_backend``, with
the ``REPRO_VM_EXEC`` environment variable filling in when the caller
passes ``None``.  Cycle estimation (:mod:`repro.vm.schedule`) reads the
instruction stream, never the executor, so timing results are identical
under either backend.

Predication: an :class:`IfBlock` executes its body unconditionally,
then lane-wise selects the new values where the condition register is
nonzero and restores the old values elsewhere — the standard SPMD
treatment of divergent branches.  While doing so the machine *measures*
P(taken) into :attr:`Machine.branch_stats`, which is where the cost
model's branch probabilities come from.
"""

from __future__ import annotations

import os

import numpy as np

from repro.vm.isa import OPS
from repro.vm.program import IfBlock, Instr, Loop, Node, Program, Segment

__all__ = [
    "BranchStat",
    "EXEC_BACKENDS",
    "Machine",
    "MachineError",
    "resolve_exec_backend",
]

#: Recognized execution backends.
EXEC_BACKENDS = ("interp", "compiled", "fused")

#: Environment variable consulted when ``exec_backend`` is not given.
EXEC_ENV_VAR = "REPRO_VM_EXEC"


class MachineError(RuntimeError):
    """Raised for malformed programs or register-file misuse."""


def resolve_exec_backend(
    explicit: str | None = None,
    default: str = "interp",
    device: str = "vm",
) -> str:
    """Pick an execution backend: explicit > env var > tuned > default.

    The core :class:`Machine` defaults to ``interp`` (full ``env``
    side-effects, reference semantics); the device drivers default to
    ``compiled`` (the fast path).  ``REPRO_VM_EXEC`` overrides either
    default when the caller did not choose explicitly; below that, an
    active tuned config's ``vm.exec`` value (scoped to ``device`` — the
    drivers pass ``"cell"``/``"gpu"``) fills in.  All three backends are
    bit-identical, so this ordering can only change speed.
    """
    backend = explicit if explicit is not None else (
        os.environ.get(EXEC_ENV_VAR) or None  # empty string = unset
    )
    if backend is None:
        from repro.tune.context import tuned_value

        backend = tuned_value("vm.exec", device)
    if backend is None:
        backend = default
    if backend not in EXEC_BACKENDS:
        raise ValueError(
            f"unknown VM execution backend {backend!r}; "
            f"expected one of {EXEC_BACKENDS}"
        )
    return backend


def _register_exec_tunable() -> None:
    """Declare ``vm.exec`` (deferred import keeps module load acyclic)."""
    from repro.tune.spec import TunableSpec, register_tunable

    register_tunable(TunableSpec(
        name="vm.exec",
        backend="vm",
        kind="choice",
        default="compiled",
        candidates=EXEC_BACKENDS,
        description="VM execution backend (interp/compiled/fused)",
        effect="compiled fuses each segment into one NumPy closure; "
               "fused additionally eliminates per-segment dispatch and "
               "batches replicas — fastest for whole-program workloads",
    ))


_register_exec_tunable()


class BranchStat:
    """Running (weighted_sum, count) accumulator of one branch's P(taken).

    One sample is recorded per :class:`IfBlock` evaluation.  A run of a
    long simulation evaluates each branch millions of times, so the
    stats are folded into a running pair instead of an append-only list
    (the list grew one float per segment execution, without bound).
    """

    __slots__ = ("total", "count")

    def __init__(self, total: float = 0.0, count: int = 0) -> None:
        self.total = float(total)
        self.count = int(count)

    def add(self, sample: float) -> None:
        self.total += float(sample)
        self.count += 1

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ZeroDivisionError("no branch samples recorded")
        return self.total / self.count

    def snapshot(self) -> tuple[float, int]:
        """An immutable (total, count) view, for before/after deltas."""
        return (self.total, self.count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BranchStat(total={self.total!r}, count={self.count!r})"


class Machine:
    """A batched SPMD executor with a ``(batch, width)`` register file."""

    def __init__(
        self,
        width: int = 4,
        dtype: np.dtype | type = np.float32,
        exec_backend: str | None = None,
    ) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self.width = width
        self.dtype = np.dtype(dtype)
        self.exec_backend = resolve_exec_backend(exec_backend, default="interp")
        #: measured P(taken) per IfBlock prob_key, accumulated over runs
        self.branch_stats: dict[str, BranchStat] = {}
        #: whole-program executions / replica-steps, accumulated over
        #: :meth:`run_program` calls — the obs layer charges these to the
        #: additive ``vm.programs`` / ``vm.replicas`` counters
        self.programs_run = 0
        self.replicas_run = 0
        #: optional fault session corrupting declared outputs post-segment
        self._fault_session = None
        #: when set (batched fused runs), probes append
        #: ``(prob_key, per-replica samples)`` here instead of recording
        #: immediately; ``run_program`` replays the buffer replica-major
        self._probe_buffer: list[tuple[str, list[float]]] | None = None

    # -- register helpers ------------------------------------------------

    def make_register(self, batch: int, fill: float = 0.0) -> np.ndarray:
        """A fresh (batch, width) register filled with ``fill``."""
        return np.full((batch, self.width), fill, dtype=self.dtype)

    def load_vec3(self, values: np.ndarray, batch_pad: float = 0.0) -> np.ndarray:
        """Pack (batch, 3) vectors into registers, 4th lane = ``batch_pad``.

        This mirrors the paper's layout choice: "use the first three
        components of the inherent SIMD data types for the x, y, and z
        components" (section 5.1).
        """
        values = np.asarray(values, dtype=self.dtype)
        if values.ndim != 2 or values.shape[1] > self.width:
            raise MachineError(
                f"expected (batch, <= {self.width}) array, got {values.shape}"
            )
        reg = self.make_register(values.shape[0], batch_pad)
        reg[:, : values.shape[1]] = values
        return reg

    # -- execution -------------------------------------------------------

    def run_segment(
        self,
        program: Program,
        segment_name: str,
        env: dict[str, np.ndarray],
    ) -> dict[str, np.ndarray]:
        """Execute one segment body over the batch described by ``env``.

        ``env`` maps register names to (batch, width) arrays; it is
        mutated in place and also returned.  Registers referenced before
        definition raise :class:`MachineError`.

        Backend contract: the ``interp`` backend stores every written
        register into ``env``; the ``compiled`` backend stores only the
        program's declared outputs (intermediates live in reused buffer
        slots).  Declared outputs and branch statistics are bit-identical
        between the two.
        """
        segment = program.segment(segment_name)
        self._check_env(env)
        if self.exec_backend in ("compiled", "fused"):
            from repro.vm.compile import compiled_segment

            compiled_segment(program, segment_name, self.width, self.dtype)(
                env, self
            )
        else:
            self._exec_nodes(segment.body, env, loop_indices=[])
        if self._fault_session is not None:
            self._fault_session.machine_bitflip(self, program.outputs, env)
        return env

    def run_program(
        self,
        program: Program,
        env: dict[str, np.ndarray],
        replicas: int = 1,
    ) -> dict[str, np.ndarray]:
        """Execute *every* segment of ``program`` over the batch in ``env``.

        Under the ``fused`` backend the whole program runs as one
        compiled closure (no per-segment dispatch); under ``interp`` and
        ``compiled`` the segments execute sequentially over the shared
        ``env`` — same results, reference semantics.

        ``replicas=R`` declares that the batch rows are R independent
        replicas stacked along the row axis (row ``r*B .. (r+1)*B-1`` is
        replica ``r``).  The ``fused`` backend executes all replicas in
        one vectorized call; ``interp`` and ``compiled`` loop replica by
        replica on row slices — the sequential reference the batched
        path must match bit for bit, branch statistics included.  With
        ``replicas > 1`` only the program's declared outputs are merged
        back into ``env``.

        An armed fault session fires once, after the whole program —
        one potential bitflip per ``run_program`` call, landing in
        exactly one replica's rows.
        """
        self._check_env(env)
        if replicas < 1:
            raise MachineError(f"replicas must be >= 1, got {replicas}")
        batch = next(iter(env.values())).shape[0] if env else 0
        if env and batch % replicas:
            raise MachineError(
                f"batch {batch} is not divisible into {replicas} replicas"
            )
        if replicas == 1 or self.exec_backend == "fused":
            if replicas > 1:
                # The closure fires probes in program order, each with all
                # replicas' samples at once; the sequential reference
                # accumulates replica-major.  When IfBlocks share a
                # prob_key the two orders sum differently in float, so
                # buffer and replay replica-major to stay bit-identical.
                self._probe_buffer = []
                try:
                    self._run_program_once(program, env, replicas)
                finally:
                    buffered, self._probe_buffer = self._probe_buffer, None
                for index in range(replicas):
                    for key, samples in buffered:
                        self._record_branch(key, samples[index])
            else:
                self._run_program_once(program, env, replicas)
        else:
            rows = batch // replicas
            merged: dict[str, list[np.ndarray]] = {
                name: [] for name in program.outputs
            }
            for index in range(replicas):
                sub = {
                    name: reg[index * rows : (index + 1) * rows]
                    for name, reg in env.items()
                }
                self._run_program_once(program, sub, 1)
                for name in program.outputs:
                    merged[name].append(sub[name])
            for name, parts in merged.items():
                env[name] = np.concatenate(parts, axis=0)
        self.programs_run += 1
        self.replicas_run += replicas
        if self._fault_session is not None:
            self._fault_session.machine_bitflip(self, program.outputs, env)
        return env

    def _run_program_once(
        self,
        program: Program,
        env: dict[str, np.ndarray],
        replicas: int,
    ) -> None:
        """All segments, no fault hook (``run_program`` applies it once)."""
        if self.exec_backend == "fused":
            from repro.vm.compile import compiled_program

            compiled_program(program, self.width, self.dtype)(
                env, self, replicas=replicas
            )
        elif self.exec_backend == "compiled":
            from repro.vm.compile import compiled_segment

            for segment in program.segments:
                compiled_segment(program, segment.name, self.width, self.dtype)(
                    env, self
                )
        else:
            for segment in program.segments:
                self._exec_nodes(segment.body, env, loop_indices=[])

    def install_fault_session(self, session) -> None:
        """Arm instruction-level fault injection (``vm.bitflip``).

        After every segment execution the session may corrupt one
        element of a declared output register — the VM-mode analogue of
        an SEU in an SPE's local store or a GPU render target.
        """
        self._fault_session = session

    def measured_probability(self, prob_key: str) -> float:
        """Mean measured P(taken) for a branch key across all runs so far."""
        stat = self.branch_stats.get(prob_key)
        if stat is None or stat.count == 0:
            raise KeyError(f"no measurements recorded for branch {prob_key!r}")
        return stat.mean

    def branch_snapshot(self, prob_key: str) -> tuple[float, int]:
        """(total, count) for a branch key right now (zeros if unseen).

        Callers that need the probability over a *window* of executions
        snapshot before, run, and difference after — the running-pair
        equivalent of slicing the old per-run sample list.
        """
        stat = self.branch_stats.get(prob_key)
        return stat.snapshot() if stat is not None else (0.0, 0)

    def _record_branch(self, prob_key: str, sample: float) -> None:
        """Fold one P(taken) sample into the running stats."""
        stat = self.branch_stats.get(prob_key)
        if stat is None:
            stat = self.branch_stats[prob_key] = BranchStat()
        stat.add(sample)

    # -- internals -------------------------------------------------------

    def _check_env(self, env: dict[str, np.ndarray]) -> None:
        batches = set()
        for name, reg in env.items():
            if reg.ndim != 2 or reg.shape[1] != self.width:
                raise MachineError(
                    f"register {name!r} has shape {reg.shape}, expected "
                    f"(batch, {self.width})"
                )
            batches.add(reg.shape[0])
        if len(batches) > 1:
            raise MachineError(f"inconsistent batch sizes in env: {batches}")

    def _exec_nodes(
        self,
        nodes: tuple[Node, ...],
        env: dict[str, np.ndarray],
        loop_indices: list[int],
    ) -> None:
        for node in nodes:
            if isinstance(node, Instr):
                self._exec_instr(node, env, loop_indices)
            elif isinstance(node, Loop):
                for index in range(node.count):
                    self._exec_nodes(node.body, env, loop_indices + [index])
            elif isinstance(node, IfBlock):
                self._exec_if(node, env, loop_indices)
            else:  # pragma: no cover - defensive
                raise MachineError(f"unknown node type {type(node)!r}")

    def _exec_instr(
        self,
        instr: Instr,
        env: dict[str, np.ndarray],
        loop_indices: list[int],
    ) -> None:
        spec = OPS[instr.op]
        if spec.func is None:  # nop
            return
        try:
            srcs = [env[name] for name in instr.srcs]
        except KeyError as exc:
            raise MachineError(
                f"instruction {instr.op} reads undefined register {exc}"
            ) from exc
        imm = self._resolve_imm(instr, loop_indices)
        # Garbage lanes (padding, excluded self-pairs) legitimately hit
        # inf/nan in estimate ops, exactly as idle SIMD lanes do on
        # hardware; they are masked out downstream, so keep NumPy quiet.
        with np.errstate(all="ignore"):
            if spec.uses_imm:
                result = spec.func(*srcs, imm)
            else:
                result = spec.func(*srcs)
        if instr.dest is not None:
            env[instr.dest] = np.asarray(result, dtype=self.dtype)

    @staticmethod
    def _resolve_imm(instr: Instr, loop_indices: list[int]) -> object | None:
        """Resolve per-loop-iteration immediates.

        Convention: for ``il`` a tuple immediate holds one scalar per
        iteration of the innermost enclosing loop; for ``ilv`` a tuple of
        tuples holds one lane vector per iteration.  Anything else is
        passed through unchanged.
        """
        imm = instr.imm
        if not loop_indices or not isinstance(imm, tuple) or not imm:
            return imm
        index = loop_indices[-1] % len(imm)
        if instr.op == "il" and isinstance(imm[0], (float, int)):
            return imm[index]
        if instr.op == "ilv" and isinstance(imm[0], tuple):
            return imm[index]
        return imm

    def _exec_if(
        self,
        node: IfBlock,
        env: dict[str, np.ndarray],
        loop_indices: list[int],
    ) -> None:
        if node.cond not in env:
            raise MachineError(f"IfBlock condition {node.cond!r} undefined")
        mask = env[node.cond] != 0
        taken_rows = mask.any(axis=-1)
        self._record_branch(
            node.prob_key,
            float(taken_rows.mean()) if taken_rows.size else 0.0,
        )
        written = self._written_registers(node.body)
        saved = {name: env[name].copy() for name in written if name in env}
        self._exec_nodes(node.body, env, loop_indices)
        for name in written:
            if name in saved:
                env[name] = np.where(mask, env[name], saved[name])
            elif name in env:
                # First defined inside the If: zero out untaken lanes so
                # untaken iterations contribute the additive identity.
                env[name] = np.where(mask, env[name], self.dtype.type(0.0))

    @staticmethod
    def _written_registers(nodes: tuple[Node, ...]) -> list[str]:
        written: list[str] = []
        stack: list[Node] = list(nodes)
        while stack:
            node = stack.pop()
            if isinstance(node, Instr):
                if node.dest is not None and node.dest not in written:
                    written.append(node.dest)
            elif isinstance(node, (Loop, IfBlock)):
                stack.extend(node.body)
        return written
