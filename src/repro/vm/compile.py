"""Codegen execution backend: lower a VM segment to one fused NumPy closure.

The interpreter in :mod:`repro.vm.machine` pays per-instruction costs
that have nothing to do with the arithmetic: a dict dispatch per
opcode, a fresh ``(batch, width)`` allocation per result, and full
register copies around every :class:`~repro.vm.program.IfBlock`.  This
module removes all of it by *compiling* a segment once:

1. **Flatten** the node tree to SSA straight-line form — loops are
   unrolled with their ``il``/``ilv`` per-iteration immediates resolved
   at compile time, and value-identity opcodes (``mov``, ``lqd``,
   ``stqd``, ``texfetch``, ``fi``) become pure renames that emit no
   code at all.
2. **Hoist constants** — ``il``/``ilv`` results (and anything computed
   only from them) fold to ``(width,)`` broadcast constants instead of
   per-call ``np.full`` materializations.
3. **Lower predication** — an ``IfBlock`` becomes one boolean mask, a
   branch-probability probe feeding ``Machine.branch_stats`` exactly as
   the interpreter does, and per-register masked selects over only the
   registers the body actually redefines (the SSA form *is* the saved
   copy, so nothing is copied up front).
4. **Eliminate dead code** — values that never reach a declared output
   or a probe are dropped (the scalar Figure-5 kernels' local-store
   spill traffic exists purely for the cycle model, so it vanishes
   here while still being charged by :mod:`repro.vm.schedule`).
5. **Assign buffer slots by liveness** — a linear scan reuses a small
   pool of ``(batch, width)`` scratch buffers via in-place ``out=``
   ufunc kernels; steady-state execution allocates nothing.
6. **Emit Python source** for the whole segment body and ``exec`` it
   once; the closure is cached per ``(program, scope, width, dtype)``
   where *scope* distinguishes a per-segment compilation from a fused
   whole-program one (the two must never alias a cache entry even when
   a program has a single segment, or a segment name that collides with
   the scope marker).

Two compilation granularities share this pipeline:

* :func:`compile_segment` lowers one named segment — the ``compiled``
  backend's unit, dispatched per :meth:`Machine.run_segment` call.
* :func:`compile_program` feeds *every* segment of a program through
  one :class:`_Flattener` in declaration order, so values flow across
  segment boundaries in SSA form (a force segment's ``acc_out`` is
  consumed by the integration segment without ever touching ``env``)
  and the liveness scan reuses buffer slots across those boundaries.
  This is the ``fused`` backend's whole-timestep unit: one closure,
  zero per-segment dispatch.

Replica batching: the emitted closure takes a ``replicas`` count.  The
arithmetic needs nothing special — every operation is elementwise along
the row axis, so R replicas stacked along rows compute exactly what R
sequential runs compute — but branch-probability *probes* must stay
per-replica: the closure records one P(taken) sample per replica, in
replica order, so ``Machine.branch_stats`` after a batched run is
bit-identical to R sequential runs.

The compiled closure is bit-identical to the interpreter on every
declared output and records the same branch-probability samples in the
same order (the differential suites in ``tests/vm/test_compile.py``
and ``tests/vm/test_fused.py`` enforce both).  Contract difference:
only the program's *declared outputs* are written back to ``env``;
interpreter intermediates stay in reused slots.  The cycle model is
untouched — it reads the instruction stream, not the executor.
"""

from __future__ import annotations

import functools
import itertools
import weakref

import numpy as np

from repro.vm.isa import OPS
from repro.vm.machine import Machine, MachineError
from repro.vm.program import IfBlock, Instr, Loop, Node, Program

__all__ = [
    "VMCompileError",
    "CompiledSegment",
    "compiled_segment",
    "compile_segment",
    "compiled_program",
    "compile_program",
]


class VMCompileError(MachineError):
    """Raised when a program cannot be lowered to straight-line NumPy."""


#: Opcodes whose result is value-identical to one source: compiled away
#: to SSA renames.  The index is the source that carries the value.
_RENAME_OPS = {"mov": 0, "lqd": 0, "stqd": 0, "texfetch": 0, "fi": 1}

#: Binary elementwise opcodes -> ufunc (dest may alias either source).
_BINARY_UFUNCS = {
    "fa": "np.add",
    "fs": "np.subtract",
    "fm": "np.multiply",
    "fdiv": "np.divide",
    "fmin": "np.minimum",
    "fmax": "np.maximum",
    "cpsgn": "np.copysign",
    "and_": "np.multiply",  # mask conjunction, as in the ISA
    "or_": "np.maximum",  # mask disjunction
    "fcgt": "np.greater",  # bool result cast into the float out= buffer
    "fclt": "np.less",
    "fceq": "np.equal",
}

#: Unary elementwise opcodes -> ufunc (dest may alias the source).
_UNARY_UFUNCS = {"fsqrt": "np.sqrt", "fabs": "np.abs", "fneg": "np.negative"}

_ELEMENTWISE_MULTI = {"fma", "fms", "fnms", "frest", "frsqest", "fround"}

#: src positions the dest buffer may alias, per opcode.
_ALIAS_SAFE = {
    **{op: (0, 1) for op in _BINARY_UFUNCS},
    **{op: (0,) for op in _UNARY_UFUNCS},
    "fma": (0, 1),
    "fms": (0, 1),
    "fnms": (0, 1),
    "frest": (0,),
    "frsqest": (0,),
    "fround": (0,),
    "splat": (),
    "shufb": (),
    "rotqbyi": (),
}

_uid = itertools.count()


class _Val:
    """One SSA value: an env input, a hoisted constant, or a slot temp."""

    __slots__ = ("kind", "name", "const", "uid")

    def __init__(self, kind: str, name: str | None = None, const=None) -> None:
        self.kind = kind  # "input" | "const" | "temp" | "mask"
        self.name = name
        self.const = const
        self.uid = next(_uid)

    @property
    def pool(self) -> str:
        return "b" if self.kind == "mask" else "f"

    @property
    def slotted(self) -> bool:
        return self.kind in ("temp", "mask")


class _Op:
    """One lowered operation in the straight-line stream."""

    __slots__ = ("kind", "opname", "dest", "srcs", "imm", "prob_key", "sample", "alias_pos")

    def __init__(self, kind, dest=None, srcs=(), opname=None, imm=None,
                 prob_key=None, sample=None):
        self.kind = kind  # "compute" | "mask" | "select" | "probe"
        self.opname = opname
        self.dest = dest
        self.srcs = tuple(srcs)
        self.imm = imm
        self.prob_key = prob_key
        self.sample = sample
        self.alias_pos = None

    def alias_safe(self) -> tuple[int, ...]:
        if self.kind == "compute":
            return _ALIAS_SAFE.get(self.opname, ())
        if self.kind == "select":  # srcs = (mask, taken, untaken)
            return (2,)
        return ()


class _Flattener:
    """Unroll, rename, fold, and predicate a segment body into _Ops."""

    def __init__(self, width: int, dtype: np.dtype) -> None:
        self.width = width
        self.dtype = dtype
        self.ops: list[_Op] = []
        self.env_vals: dict[str, _Val] = {}
        self.inputs: dict[str, _Val] = {}
        self._mask_memo: dict[int, _Val] = {}
        self._maybe_memo: dict[str, _Val] = {}

    # -- value helpers ---------------------------------------------------

    def read(self, name: str) -> _Val:
        val = self.env_vals.get(name)
        if val is None:
            val = self.inputs.get(name)
            if val is None:
                val = _Val("input", name=name)
                self.inputs[name] = val
            self.env_vals[name] = val
        return val

    def const(self, array: np.ndarray) -> _Val:
        return _Val("const", const=array)

    def maybe_input(self, name: str) -> _Val:
        """A register whose presence in ``env`` is only known at run time.

        Interpreter rule for a register first written inside an IfBlock:
        untaken lanes restore the caller-provided value when ``env``
        holds one, else the additive identity.  ``env.get(name, zeros)``
        in the prologue reproduces that exactly.
        """
        memo = self._maybe_memo.get(name)
        if memo is None:
            memo = self._maybe_memo[name] = _Val("maybe", name=name)
        return memo

    def mask_of(self, cond: _Val) -> _Val:
        """The boolean ``cond != 0`` mask, memoized per source value."""
        memo = self._mask_memo.get(cond.uid)
        if memo is not None:
            return memo
        if cond.kind == "const":
            mask = self.const(cond.const != 0)
        else:
            mask = _Val("mask")
            self.ops.append(_Op("mask", dest=mask, srcs=(cond,)))
        self._mask_memo[cond.uid] = mask
        return mask

    # -- node lowering ---------------------------------------------------

    def flatten(self, nodes: tuple[Node, ...], loop_indices: list[int]) -> None:
        for node in nodes:
            if isinstance(node, Instr):
                self._flatten_instr(node, loop_indices)
            elif isinstance(node, Loop):
                for index in range(node.count):
                    self.flatten(node.body, loop_indices + [index])
            elif isinstance(node, IfBlock):
                self._flatten_if(node, loop_indices)
            else:  # pragma: no cover - defensive
                raise VMCompileError(f"unknown node type {type(node)!r}")

    def _flatten_instr(self, instr: Instr, loop_indices: list[int]) -> None:
        spec = OPS[instr.op]
        if spec.func is None:  # nop
            return
        srcs = [self.read(name) for name in instr.srcs]
        imm = Machine._resolve_imm(instr, loop_indices)

        rename = _RENAME_OPS.get(instr.op)
        if rename is not None:
            if instr.dest is not None:
                self.env_vals[instr.dest] = srcs[rename]
            return

        if instr.op in ("il", "ilv"):
            self.env_vals[instr.dest] = self.const(self._immediate_const(instr.op, imm))
            return

        if instr.op == "selb":
            self._lower_select(instr.dest, srcs[2], srcs[1], srcs[0])
            return

        self._validate_lane_imm(instr.op, imm)
        if all(s.kind == "const" for s in srcs):
            self.env_vals[instr.dest] = self.const(
                self._fold(spec, [s.const for s in srcs], imm)
            )
            return
        dest = _Val("temp")
        self.ops.append(_Op("compute", dest=dest, srcs=srcs, opname=instr.op, imm=imm))
        if instr.dest is not None:
            self.env_vals[instr.dest] = dest

    def _lower_select(self, dest_name: str, cond: _Val, taken: _Val, untaken: _Val) -> _Val:
        """``where(cond != 0, taken, untaken)`` as mask + masked copies."""
        mask = self.mask_of(cond)
        if mask.kind == "const" and taken.kind == "const" and untaken.kind == "const":
            dest = self.const(
                np.where(mask.const, taken.const, untaken.const).astype(
                    self.dtype, copy=False
                )
            )
        else:
            dest = _Val("temp")
            self.ops.append(_Op("select", dest=dest, srcs=(mask, taken, untaken)))
        if dest_name is not None:
            self.env_vals[dest_name] = dest
        return dest

    def _flatten_if(self, node: IfBlock, loop_indices: list[int]) -> None:
        cond = self.read(node.cond)
        mask = self.mask_of(cond)
        sample = None
        if mask.kind == "const":
            sample = 1.0 if bool(np.any(mask.const)) else 0.0
        self.ops.append(_Op("probe", srcs=(mask,), prob_key=node.prob_key, sample=sample))
        before = dict(self.env_vals)
        self.flatten(node.body, loop_indices)
        # Registers the body redefined get lane-selected against their
        # pre-branch value — the interpreter's save/restore without the
        # copies.  A register first touched inside the body falls back
        # to its env input (created by a read in the body) or, when the
        # segment never reads it at all, to a runtime env.get lookup.
        for name in list(self.env_vals):
            new = self.env_vals[name]
            old = before.get(name)
            if old is new:
                continue
            if old is None:
                old = self.inputs.get(name) or self.maybe_input(name)
                if old is new:
                    continue
            merged = self._lower_if_merge(mask, new, old)
            self.env_vals[name] = merged

    def _lower_if_merge(self, mask: _Val, taken: _Val, untaken: _Val) -> _Val:
        if mask.kind == "const" and taken.kind == "const" and untaken.kind == "const":
            return self.const(
                np.where(mask.const, taken.const, untaken.const).astype(
                    self.dtype, copy=False
                )
            )
        dest = _Val("temp")
        self.ops.append(_Op("select", dest=dest, srcs=(mask, taken, untaken)))
        return dest

    # -- immediates and folding ------------------------------------------

    def _immediate_const(self, op: str, imm) -> np.ndarray:
        """Evaluate il/ilv to a (width,) broadcast constant."""
        try:
            if op == "il":
                return np.full((self.width,), imm, dtype=self.dtype)
            lanes = np.zeros((self.width,), dtype=self.dtype)
            values = tuple(imm)
            if len(values) > self.width:
                raise ValueError(
                    f"{len(values)} lanes exceed width {self.width}"
                )
            for lane, value in enumerate(values):
                lanes[lane] = value
            return lanes
        except (TypeError, ValueError) as exc:
            raise VMCompileError(f"bad {op} immediate {imm!r}: {exc}") from exc

    def _validate_lane_imm(self, op: str, imm) -> None:
        width = self.width
        if op == "splat":
            if not isinstance(imm, (int, np.integer)) or not 0 <= imm < width:
                raise VMCompileError(f"splat lane {imm!r} outside [0, {width})")
        elif op == "shufb":
            pattern = tuple(imm) if isinstance(imm, (tuple, list)) else None
            if pattern is None or len(pattern) != width or not all(
                isinstance(i, (int, np.integer)) and 0 <= i < 2 * width
                for i in pattern
            ):
                raise VMCompileError(
                    f"shufb pattern {imm!r} must hold {width} lane indices "
                    f"in [0, {2 * width})"
                )
        elif op == "rotqbyi":
            if not isinstance(imm, (int, np.integer)):
                raise VMCompileError(f"rotqbyi amount {imm!r} is not an integer")

    def _fold(self, spec, consts: list[np.ndarray], imm) -> np.ndarray:
        """Apply an opcode to (width,) constants — identical per-lane
        arithmetic to applying it to every row of a (batch, width) batch."""
        with np.errstate(all="ignore"):
            result = spec.func(*consts, imm) if spec.uses_imm else spec.func(*consts)
        result = np.asarray(result, dtype=self.dtype)
        if result.shape != (self.width,):
            raise VMCompileError(
                f"{spec.name} folded to shape {result.shape}, "
                f"expected ({self.width},)"
            )
        return result


# ---------------------------------------------------------------------------
# dead-code elimination, liveness, slot assignment
# ---------------------------------------------------------------------------


def _eliminate_dead(ops: list[_Op], live_out: set[int]) -> list[_Op]:
    """Keep probes (side effects) and everything a live value depends on."""
    needed = set(live_out)
    keep = [False] * len(ops)
    for i in range(len(ops) - 1, -1, -1):
        op = ops[i]
        if op.kind == "probe" or (op.dest is not None and op.dest.uid in needed):
            keep[i] = True
            for src in op.srcs:
                needed.add(src.uid)
    return [op for i, op in enumerate(ops) if keep[i]]


def _assign_slots(ops: list[_Op], writeback_vals: list[_Val]) -> tuple[dict[int, tuple[str, int]], dict[str, int]]:
    """Linear-scan slot allocation with alias-aware ``out=`` reuse."""
    last_use: dict[int, int] = {}
    for i, op in enumerate(ops):
        for src in op.srcs:
            if src.slotted:
                last_use[src.uid] = i
    for val in writeback_vals:
        if val.slotted:
            last_use[val.uid] = len(ops)

    slots: dict[int, tuple[str, int]] = {}
    free: dict[str, list[int]] = {"f": [], "b": []}
    counts: dict[str, int] = {"f": 0, "b": 0}

    for i, op in enumerate(ops):
        aliased_src = None
        if op.dest is not None:
            pool = op.dest.pool
            safe = op.alias_safe()
            for pos in safe:
                src = op.srcs[pos]
                if (
                    src.slotted
                    and src.pool == pool
                    and last_use.get(src.uid) == i
                    and not any(
                        op.srcs[q] is src
                        for q in range(len(op.srcs))
                        if q not in safe
                    )
                ):
                    slots[op.dest.uid] = slots[src.uid]
                    op.alias_pos = pos
                    aliased_src = src
                    break
            if aliased_src is None:
                if free[pool]:
                    slots[op.dest.uid] = (pool, free[pool].pop())
                else:
                    slots[op.dest.uid] = (pool, counts[pool])
                    counts[pool] += 1
        freed = set()
        for src in op.srcs:
            if (
                src.slotted
                and src is not aliased_src
                and src.uid not in freed
                and last_use.get(src.uid) == i
            ):
                pool, index = slots[src.uid]
                free[pool].append(index)
                freed.add(src.uid)
    return slots, counts


# ---------------------------------------------------------------------------
# code emission
# ---------------------------------------------------------------------------


def _emit_compute(op: _Op, expr, width: int) -> list[str]:
    d = expr(op.dest)
    s = [expr(v) for v in op.srcs]
    name = op.opname
    if name in _BINARY_UFUNCS:
        return [f"{_BINARY_UFUNCS[name]}({s[0]}, {s[1]}, out={d})"]
    if name in _UNARY_UFUNCS:
        return [f"{_UNARY_UFUNCS[name]}({s[0]}, out={d})"]
    if name == "fma":
        return [f"np.multiply({s[0]}, {s[1]}, out={d})",
                f"np.add({d}, {s[2]}, out={d})"]
    if name == "fms":
        return [f"np.multiply({s[0]}, {s[1]}, out={d})",
                f"np.subtract({d}, {s[2]}, out={d})"]
    if name == "fnms":  # c - a*b
        return [f"np.multiply({s[0]}, {s[1]}, out={d})",
                f"np.subtract({s[2]}, {d}, out={d})"]
    if name == "frest":
        return [f"np.divide(_one, {s[0]}, out={d})"]
    if name == "frsqest":
        return [f"np.sqrt({s[0]}, out={d})",
                f"np.divide(_one, {d}, out={d})"]
    if name == "fround":
        return [f"np.round({s[0]}, 0, {d})"]
    if name == "splat":
        lane = int(op.imm)
        return [f"{d}[...] = {s[0]}[..., {lane}:{lane + 1}]"]
    if name == "shufb":
        lines = []
        for k, index in enumerate(op.imm):
            src = s[0] if index < width else s[1]
            lane = index if index < width else index - width
            lines.append(f"{d}[..., {k}] = {src}[..., {lane}]")
        return lines
    if name == "rotqbyi":
        shift = int(op.imm)
        return [
            f"{d}[..., {k}] = {s[0]}[..., {(k + shift) % width}]"
            for k in range(width)
        ]
    raise VMCompileError(f"no codegen for opcode {name!r}")  # pragma: no cover


def _emit_op(op: _Op, expr, width: int) -> list[str]:
    if op.kind == "compute":
        return _emit_compute(op, expr, width)
    if op.kind == "mask":
        return [f"np.not_equal({expr(op.srcs[0])}, 0, out={expr(op.dest)})"]
    if op.kind == "select":
        mask, taken, untaken = (expr(v) for v in op.srcs)
        d = expr(op.dest)
        lines = [] if op.alias_pos == 2 else [f"np.copyto({d}, {untaken})"]
        lines.append(f"np.copyto({d}, {taken}, where={mask})")
        return lines
    if op.kind == "probe":
        if op.sample is not None:  # constant condition, batch-independent
            return [
                f"_probe_const(machine, {op.prob_key!r}, {op.sample!r}, "
                f"batch, replicas)"
            ]
        return [
            f"_probe(machine, {op.prob_key!r}, "
            f"{expr(op.srcs[0])}.any(axis=-1), replicas)",
        ]
    raise VMCompileError(f"no codegen for op kind {op.kind!r}")  # pragma: no cover


def _load(env: dict, name: str) -> np.ndarray:
    try:
        return env[name]
    except KeyError:
        raise MachineError(
            f"compiled segment reads undefined register {name!r}"
        ) from None


def _probe(machine, key: str, taken_rows: np.ndarray, replicas: int) -> None:
    """Record branch P(taken) — one sample per replica, in replica order.

    With ``replicas == 1`` this is exactly the interpreter's single
    sample.  With R replicas stacked along the row axis, each replica's
    row range contributes its own sample, so the per-key sample sequence
    (and therefore the float accumulation order in ``BranchStat``) is
    identical to R sequential single-replica runs.
    """
    if replicas == 1:
        machine._record_branch(
            key, float(taken_rows.mean()) if taken_rows.size else 0.0
        )
        return
    rows = taken_rows.shape[0] // replicas
    samples = []
    for index in range(replicas):
        sub = taken_rows[index * rows : (index + 1) * rows]
        samples.append(float(sub.mean()) if sub.size else 0.0)
    if machine._probe_buffer is not None:
        machine._probe_buffer.append((key, samples))
    else:
        for sample in samples:
            machine._record_branch(key, sample)


def _probe_const(machine, key: str, sample: float, batch: int, replicas: int) -> None:
    """Constant-condition probe: batch-independent sample, per replica."""
    if replicas == 1:
        machine._record_branch(key, sample if batch else 0.0)
        return
    rows = batch // replicas
    samples = [sample if rows else 0.0] * replicas
    if machine._probe_buffer is not None:
        machine._probe_buffer.append((key, samples))
    else:
        for value in samples:
            machine._record_branch(key, value)


class CompiledSegment:
    """One compilation unit lowered to a fused closure plus its buffers.

    The unit is either a single segment (the ``compiled`` backend) or a
    whole program's segments fused end to end (the ``fused`` backend);
    :attr:`segment_names` lists what went in, :attr:`segment_name` is
    the ``+``-joined display form.
    """

    def __init__(
        self,
        program_name: str,
        segment_name: str,
        width: int,
        dtype: np.dtype,
        fn,
        source: str,
        n_float_slots: int,
        n_bool_slots: int,
        input_names: tuple[str, ...],
        n_kernel_calls: int,
        segment_names: tuple[str, ...] | None = None,
    ) -> None:
        self.program_name = program_name
        self.segment_name = segment_name
        self.segment_names = segment_names if segment_names is not None else (segment_name,)
        self.width = width
        self.dtype = dtype
        self.source = source
        self.n_float_slots = n_float_slots
        self.n_bool_slots = n_bool_slots
        self.input_names = input_names
        self.n_kernel_calls = n_kernel_calls
        self._fn = fn
        self._pools: dict[int, tuple[tuple[np.ndarray, ...], tuple[np.ndarray, ...]]] = {}

    def _pool(self, batch: int):
        pool = self._pools.get(batch)
        if pool is None:
            if len(self._pools) > 8:  # drivers cycle over at most two sizes
                self._pools.clear()
            pool = (
                tuple(
                    np.empty((batch, self.width), dtype=self.dtype)
                    for _ in range(self.n_float_slots)
                ),
                tuple(
                    np.empty((batch, self.width), dtype=bool)
                    for _ in range(self.n_bool_slots)
                ),
            )
            self._pools[batch] = pool
        return pool

    def __call__(
        self,
        env: dict[str, np.ndarray],
        machine,
        replicas: int = 1,
    ) -> dict[str, np.ndarray]:
        batch = next(iter(env.values())).shape[0] if env else 0
        fpool, bpool = self._pool(batch)
        self._fn(env, machine, fpool, bpool, batch, replicas)
        return env


def compile_segment(
    program: Program,
    segment_name: str,
    width: int,
    dtype: np.dtype | type = np.float32,
) -> CompiledSegment:
    """Lower one segment to a :class:`CompiledSegment` (uncached)."""
    program.segment(segment_name)  # raise early on unknown names
    return _compile_unit(program, (segment_name,), width, np.dtype(dtype))


def compile_program(
    program: Program,
    width: int,
    dtype: np.dtype | type = np.float32,
) -> CompiledSegment:
    """Fuse *every* segment of ``program`` into one closure (uncached).

    Segments flatten through one shared :class:`_Flattener` in
    declaration order, so a register written by an earlier segment is
    consumed by a later one as an SSA value — no ``env`` round trip, no
    per-segment dispatch — and buffer slots are reused across segment
    boundaries by the same liveness scan.  Declared outputs are written
    back once, at the end of the whole program.
    """
    names = tuple(segment.name for segment in program.segments)
    return _compile_unit(program, names, width, np.dtype(dtype))


def _compile_unit(
    program: Program,
    segment_names: tuple[str, ...],
    width: int,
    dtype: np.dtype,
) -> CompiledSegment:
    flat = _Flattener(width, dtype)
    for name in segment_names:
        flat.flatten(program.segment(name).body, loop_indices=[])

    writebacks: list[tuple[str, _Val]] = []
    for name in program.outputs:
        val = flat.env_vals.get(name)
        if val is None or (val.kind == "input" and val.name == name):
            continue
        writebacks.append((name, val))

    ops = _eliminate_dead(flat.ops, {val.uid for _n, val in writebacks})
    slots, counts = _assign_slots(ops, [val for _n, val in writebacks])

    # -- name every value ------------------------------------------------
    input_vars: dict[int, str] = {}
    input_names: list[str] = []
    used_inputs = {v.uid for op in ops for v in op.srcs if v.kind == "input"}
    used_inputs |= {v.uid for _n, v in writebacks if v.kind == "input"}
    for index, (name, val) in enumerate(sorted(flat.inputs.items())):
        if val.uid in used_inputs:
            input_vars[val.uid] = f"_in{index}"
            input_names.append(name)

    maybe_vars: dict[int, tuple[str, str]] = {}
    for op in ops:
        for val in op.srcs:
            if val.kind == "maybe" and val.uid not in maybe_vars:
                maybe_vars[val.uid] = (f"_m{len(maybe_vars)}", val.name)

    const_vars: dict[int, str] = {}
    namespace: dict[str, object] = {
        "np": np,
        "_load": _load,
        "_probe": _probe,
        "_probe_const": _probe_const,
        "_one": dtype.type(1.0),
        "_zrow": np.zeros((width,), dtype=dtype),
    }

    def expr(val: _Val) -> str:
        if val.kind == "input":
            return input_vars[val.uid]
        if val.kind == "maybe":
            return maybe_vars[val.uid][0]
        if val.kind == "const":
            var = const_vars.get(val.uid)
            if var is None:
                var = f"_c{len(const_vars)}"
                const_vars[val.uid] = var
                namespace[var] = val.const
            return var
        pool, index = slots[val.uid]
        return f"_{pool}{index}"

    # -- assemble source -------------------------------------------------
    lines = ["def _kernel(env, machine, _fpool, _bpool, batch, replicas):"]
    for index in range(counts["f"]):
        lines.append(f"    _f{index} = _fpool[{index}]")
    for index in range(counts["b"]):
        lines.append(f"    _b{index} = _bpool[{index}]")
    for val_uid, var in input_vars.items():
        name = next(n for n, v in flat.inputs.items() if v.uid == val_uid)
        lines.append(f"    {var} = _load(env, {name!r})")
    for var, name in maybe_vars.values():
        lines.append(f"    {var} = env.get({name!r}, _zrow)")
    lines.append("    with np.errstate(all='ignore'):")
    body: list[str] = []
    n_kernel_calls = 0
    for op in ops:
        emitted = _emit_op(op, expr, width)
        n_kernel_calls += len(emitted)
        body.extend(emitted)
    for name, val in writebacks:
        if val.kind == "const":
            body.append(f"env[{name!r}] = np.tile({expr(val)}, (batch, 1))")
        else:
            body.append(f"env[{name!r}] = {expr(val)}.copy()")
    if not body:
        body.append("pass")
    lines.extend("        " + line for line in body)
    source = "\n".join(lines) + "\n"

    display = "+".join(segment_names)
    filename = f"<vm-compile:{program.name}/{display}>"
    exec(compile(source, filename, "exec"), namespace)  # noqa: S102 - own codegen
    return CompiledSegment(
        program_name=program.name,
        segment_name=display,
        width=width,
        dtype=dtype,
        fn=namespace["_kernel"],
        source=source,
        n_float_slots=counts["f"],
        n_bool_slots=counts["b"],
        input_names=tuple(input_names),
        n_kernel_calls=n_kernel_calls,
        segment_names=tuple(segment_names),
    )


@functools.lru_cache(maxsize=256)
def _compiled_unit_cached(
    program: Program, fingerprint: str, scope: tuple[str, ...], width: int,
    dtype_str: str,
) -> CompiledSegment:
    # ``scope`` is ("segment", name) or ("program", *segment_names): the
    # leading discriminator keeps a fused whole-program closure from
    # aliasing a per-segment entry of the same program — including the
    # single-segment case, where the segment-name tuple alone would be
    # identical under both backends.
    return _compile_unit(program, scope[1:], width, np.dtype(dtype_str))


#: id(program) -> (weakref, repr) — identity-keyed so equal-but-distinct
#: programs each compute their own fingerprint exactly once.
_fingerprints: dict[int, tuple] = {}


def _program_fingerprint(program: Program) -> str:
    """A cache key component stricter than dataclass equality.

    Frozen-dataclass ``==`` uses Python value equality, under which
    ``0.0 == -0.0 == False`` and ``1 == 1.0 == True`` — so two programs
    whose immediates differ only in zero sign (or int/float type) would
    share one ``lru_cache`` entry while the interpreter, reading the
    actual ``imm`` objects, distinguishes them (``np.full_like(t, -0.0)``
    is not byte-identical to ``np.full_like(t, 0.0)``).  ``repr``
    preserves those distinctions, and memoizing it per program *object*
    keeps it off the per-call hot path.
    """
    key = id(program)
    entry = _fingerprints.get(key)
    if entry is not None and entry[0]() is program:
        return entry[1]
    fingerprint = repr(program)
    ref = weakref.ref(program, lambda _r, _k=key: _fingerprints.pop(_k, None))
    _fingerprints[key] = (ref, fingerprint)
    return fingerprint


def compiled_segment(
    program: Program,
    segment_name: str,
    width: int,
    dtype: np.dtype | type = np.float32,
) -> CompiledSegment:
    """The cached entry point :class:`~repro.vm.machine.Machine` uses.

    Programs are frozen dataclasses, hence hashable; an exotic
    unhashable immediate falls back to a one-off compile.
    """
    dtype = np.dtype(dtype)
    try:
        return _compiled_unit_cached(
            program, _program_fingerprint(program), ("segment", segment_name),
            width, dtype.str,
        )
    except TypeError:
        return compile_segment(program, segment_name, width, dtype)


def compiled_program(
    program: Program,
    width: int,
    dtype: np.dtype | type = np.float32,
) -> CompiledSegment:
    """The cached whole-program entry point for the ``fused`` backend."""
    dtype = np.dtype(dtype)
    scope = ("program",) + tuple(segment.name for segment in program.segments)
    try:
        return _compiled_unit_cached(
            program, _program_fingerprint(program), scope, width, dtype.str,
        )
    except TypeError:
        return compile_program(program, width, dtype)
