"""repro — reproduction of "Analysis of a Computational Biology
Simulation Technique on Emerging Processing Architectures" (Meredith,
Alam & Vetter, IPDPS Workshops 2007).

The package pairs a real molecular-dynamics engine (:mod:`repro.md`)
with functional+performance models of the paper's four platforms:

* :mod:`repro.opteron` — the 2.2 GHz cache-based baseline,
* :mod:`repro.cell`    — the Cell Broadband Engine (PPE + 8 SPEs),
* :mod:`repro.gpu`     — a GeForce 7900GTX-class streaming GPU,
* :mod:`repro.mta`     — the Cray MTA-2 multithreaded system,

all executing their kernels through the batched SIMD virtual machine of
:mod:`repro.vm`.  :mod:`repro.experiments` regenerates every table and
figure of the paper's evaluation.  See DESIGN.md for the architecture
map and EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

from repro.md import MDConfig, MDSimulation

__all__ = ["MDConfig", "MDSimulation", "__version__"]
