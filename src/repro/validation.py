"""Cross-device validation: one API for the reproduction's core guarantee.

Every device model *computes* the MD run, so their trajectories must
agree to their arithmetic precision while their simulated timings
differ.  :func:`validate_devices` runs a workload across device models
and checks:

* trajectory agreement against the float64 reference (tolerances by
  device precision),
* total-energy conservation on every device,
* step/record bookkeeping consistency,
* breakdown components summing to the reported totals.

A run may also be validated *under fault injection*: pass a
:class:`repro.faults.FaultPlan` and each device executes through the
fault plane — the report then additionally requires the fault event log
to be fully accounted (every injected fault recovered, none aborted,
nothing silently lost), and the trajectory tolerances apply unchanged,
because recovery is required to restore bit-faithful physics.

Used by the integration tests and available to users who modify a
device model and want a one-call certification.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from repro.arch.device import Device, DeviceRunResult
from repro.faults.plan import FaultPlan
from repro.md.simulation import MDConfig, MDSimulation

__all__ = ["DeviceValidation", "ValidationReport", "validate_devices"]

#: Trajectory agreement tolerances per arithmetic precision (max |dx|
#: against the float64 reference after a short run).
_POSITION_TOLERANCE = {"float64": 1e-10, "float32": 1e-3}

#: Relative total-energy drift allowed over the validation run.
_ENERGY_DRIFT_TOLERANCE = 5e-3


@dataclasses.dataclass(frozen=True)
class DeviceValidation:
    """Validation outcome for one device."""

    device: str
    precision: str
    max_position_error: float
    energy_drift: float
    breakdown_consistent: bool
    failures: tuple[str, ...]
    #: fault accounting tallies when run under a plan (empty otherwise)
    fault_summary: dict[str, Any] = dataclasses.field(default_factory=dict)
    #: watchdog-triggered checkpoint restores during the run
    restores: int = 0
    #: True when every injected fault was detected and recovered
    faults_accounted: bool = True

    @property
    def passed(self) -> bool:
        return not self.failures


@dataclasses.dataclass(frozen=True)
class ValidationReport:
    """Outcomes for a whole device roster."""

    config: MDConfig
    n_steps: int
    devices: tuple[DeviceValidation, ...]
    #: the fault plan the roster ran under, or None for clean runs
    fault_plan: FaultPlan | None = None

    @property
    def all_passed(self) -> bool:
        return all(d.passed for d in self.devices)

    def failures(self) -> list[str]:
        return [
            f"{d.device}: {failure}"
            for d in self.devices
            for failure in d.failures
        ]


def _energy_drift(result: DeviceRunResult) -> float:
    energies = [r.total_energy for r in result.records]
    reference = energies[0]
    scale = abs(reference) if reference != 0.0 else 1.0
    return max(abs(e - reference) for e in energies) / scale


def validate_devices(
    devices: list[Device],
    config: MDConfig | None = None,
    n_steps: int = 5,
    fault_plan: FaultPlan | None = None,
) -> ValidationReport:
    """Run the roster and certify physics + bookkeeping on each device.

    With ``fault_plan``, every device runs under fault injection and
    must still meet the clean-run tolerances — recovery is obliged to
    reproduce the fault-free trajectory — plus full event-log
    accounting of every injected fault.
    """
    if n_steps < 1:
        raise ValueError("n_steps must be >= 1")
    config = config or MDConfig(n_atoms=256)
    reference = MDSimulation(dataclasses.replace(config, dtype="float64"))
    reference.run(n_steps)
    reference_positions = reference.state.positions

    outcomes: list[DeviceValidation] = []
    for device in devices:
        result = device.run(config, n_steps, faults=fault_plan)
        failures: list[str] = []

        max_err = float(
            np.max(np.abs(result.final_positions - reference_positions))
        )
        tolerance = _POSITION_TOLERANCE.get(device.precision)
        if tolerance is None:
            failures.append(f"unknown precision {device.precision!r}")
        elif max_err > tolerance:
            failures.append(
                f"trajectory diverged: max |dx| = {max_err:.3e} > {tolerance:.0e}"
            )

        drift = _energy_drift(result)
        if drift > _ENERGY_DRIFT_TOLERANCE:
            failures.append(f"energy drift {drift:.3e} exceeds tolerance")

        if len(result.records) != n_steps + 1:
            failures.append("record count does not match step count")

        breakdown_total = sum(result.breakdown.values())
        consistent = np.isclose(
            breakdown_total, result.total_seconds, rtol=1e-9, atol=1e-15
        )
        if not consistent:
            failures.append(
                f"breakdown sums to {breakdown_total!r}, total is "
                f"{result.total_seconds!r}"
            )

        summary = dict(result.fault_summary)
        restores = int(summary.get("restores", 0))
        accounted = bool(summary.get("fully_accounted", True))
        if fault_plan is not None and not accounted:
            failures.append(
                f"fault log not fully accounted: {summary.get('injected', 0)} "
                f"injected, {summary.get('recovered', 0)} recovered, "
                f"{summary.get('aborted', 0)} aborted"
            )

        outcomes.append(
            DeviceValidation(
                device=device.name,
                precision=device.precision,
                max_position_error=max_err,
                energy_drift=drift,
                breakdown_consistent=bool(consistent),
                failures=tuple(failures),
                fault_summary=summary,
                restores=restores,
                faults_accounted=accounted,
            )
        )
    return ValidationReport(
        config=config,
        n_steps=n_steps,
        devices=tuple(outcomes),
        fault_plan=fault_plan,
    )
