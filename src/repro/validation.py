"""Cross-device validation: one API for the reproduction's core guarantee.

Every device model *computes* the MD run, so their trajectories must
agree to their arithmetic precision while their simulated timings
differ.  :func:`validate_devices` runs a workload across device models
and checks:

* trajectory agreement against the float64 reference (tolerances by
  device precision),
* total-energy conservation on every device,
* step/record bookkeeping consistency,
* breakdown components summing to the reported totals.

Used by the integration tests and available to users who modify a
device model and want a one-call certification.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.arch.device import Device, DeviceRunResult
from repro.md.simulation import MDConfig, MDSimulation

__all__ = ["DeviceValidation", "ValidationReport", "validate_devices"]

#: Trajectory agreement tolerances per arithmetic precision (max |dx|
#: against the float64 reference after a short run).
_POSITION_TOLERANCE = {"float64": 1e-10, "float32": 1e-3}

#: Relative total-energy drift allowed over the validation run.
_ENERGY_DRIFT_TOLERANCE = 5e-3


@dataclasses.dataclass(frozen=True)
class DeviceValidation:
    """Validation outcome for one device."""

    device: str
    precision: str
    max_position_error: float
    energy_drift: float
    breakdown_consistent: bool
    failures: tuple[str, ...]

    @property
    def passed(self) -> bool:
        return not self.failures


@dataclasses.dataclass(frozen=True)
class ValidationReport:
    """Outcomes for a whole device roster."""

    config: MDConfig
    n_steps: int
    devices: tuple[DeviceValidation, ...]

    @property
    def all_passed(self) -> bool:
        return all(d.passed for d in self.devices)

    def failures(self) -> list[str]:
        return [
            f"{d.device}: {failure}"
            for d in self.devices
            for failure in d.failures
        ]


def _energy_drift(result: DeviceRunResult) -> float:
    energies = [r.total_energy for r in result.records]
    reference = energies[0]
    scale = abs(reference) if reference != 0.0 else 1.0
    return max(abs(e - reference) for e in energies) / scale


def validate_devices(
    devices: list[Device],
    config: MDConfig | None = None,
    n_steps: int = 5,
) -> ValidationReport:
    """Run the roster and certify physics + bookkeeping on each device."""
    if n_steps < 1:
        raise ValueError("n_steps must be >= 1")
    config = config or MDConfig(n_atoms=256)
    reference = MDSimulation(dataclasses.replace(config, dtype="float64"))
    reference.run(n_steps)
    reference_positions = reference.state.positions

    outcomes: list[DeviceValidation] = []
    for device in devices:
        result = device.run(config, n_steps)
        failures: list[str] = []

        max_err = float(
            np.max(np.abs(result.final_positions - reference_positions))
        )
        tolerance = _POSITION_TOLERANCE.get(device.precision)
        if tolerance is None:
            failures.append(f"unknown precision {device.precision!r}")
        elif max_err > tolerance:
            failures.append(
                f"trajectory diverged: max |dx| = {max_err:.3e} > {tolerance:.0e}"
            )

        drift = _energy_drift(result)
        if drift > _ENERGY_DRIFT_TOLERANCE:
            failures.append(f"energy drift {drift:.3e} exceeds tolerance")

        if len(result.records) != n_steps + 1:
            failures.append("record count does not match step count")

        breakdown_total = sum(result.breakdown.values())
        consistent = np.isclose(
            breakdown_total, result.total_seconds, rtol=1e-9, atol=1e-15
        )
        if not consistent:
            failures.append(
                f"breakdown sums to {breakdown_total!r}, total is "
                f"{result.total_seconds!r}"
            )

        outcomes.append(
            DeviceValidation(
                device=device.name,
                precision=device.precision,
                max_position_error=max_err,
                energy_drift=drift,
                breakdown_consistent=bool(consistent),
                failures=tuple(failures),
            )
        )
    return ValidationReport(
        config=config, n_steps=n_steps, devices=tuple(outcomes)
    )
