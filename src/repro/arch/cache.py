"""Set-associative LRU cache simulation.

The Opteron cost model feeds the MD kernel's memory-access pattern
through a real cache hierarchy to obtain miss rates, rather than
curve-fitting the super-quadratic runtime growth of the paper's
Figure 9.  The simulator is exact (true LRU per set); the cost model
keeps traces short by exploiting the kernel's periodicity (the same
position-array scan repeats for every atom), so exactness is affordable.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["Cache", "CacheStats", "CacheHierarchy"]


@dataclasses.dataclass
class CacheStats:
    """Access tallies for one cache level."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def merge(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            accesses=self.accesses + other.accesses, hits=self.hits + other.hits
        )


class Cache:
    """One set-associative, true-LRU, write-allocate cache level."""

    def __init__(self, size_bytes: int, line_bytes: int, ways: int, name: str = "L") -> None:
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("cache geometry values must be positive")
        if size_bytes % (line_bytes * ways) != 0:
            raise ValueError(
                f"size {size_bytes} not divisible by line*ways = {line_bytes * ways}"
            )
        n_sets = size_bytes // (line_bytes * ways)
        if n_sets & (n_sets - 1) != 0:
            raise ValueError(f"number of sets must be a power of two, got {n_sets}")
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = n_sets
        self.stats = CacheStats()
        # sets[s] is an LRU-ordered list of line tags, most recent last.
        self._sets: list[list[int]] = [[] for _ in range(n_sets)]

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def flush(self) -> None:
        """Invalidate all lines (stats are kept)."""
        self._sets = [[] for _ in range(self.n_sets)]

    def access_line(self, line_address: int) -> bool:
        """Touch one line (already divided by line size); True on hit."""
        set_index = line_address & (self.n_sets - 1)
        tag = line_address >> 0  # full line address as tag; sets disjoint
        lru = self._sets[set_index]
        self.stats.accesses += 1
        try:
            lru.remove(tag)
            hit = True
        except ValueError:
            hit = False
            if len(lru) >= self.ways:
                lru.pop(0)
        lru.append(tag)
        if hit:
            self.stats.hits += 1
        return hit

    def access(self, byte_addresses: np.ndarray) -> np.ndarray:
        """Touch a sequence of byte addresses; returns a boolean hit mask."""
        lines = np.asarray(byte_addresses, dtype=np.int64) // self.line_bytes
        return np.fromiter(
            (self.access_line(int(line)) for line in lines),
            dtype=bool,
            count=lines.size,
        )


class CacheHierarchy:
    """An inclusive two-plus-level hierarchy with per-level penalties.

    ``levels`` is an ordered list of (cache, miss_penalty_cycles); a miss
    at level i probes level i+1.  A miss at the last level costs the
    additional ``memory_penalty_cycles``.
    """

    def __init__(
        self,
        levels: list[tuple[Cache, float]],
        memory_penalty_cycles: float,
    ) -> None:
        if not levels:
            raise ValueError("hierarchy needs at least one cache level")
        if memory_penalty_cycles < 0:
            raise ValueError("memory penalty must be non-negative")
        self.levels = levels
        self.memory_penalty_cycles = memory_penalty_cycles

    def flush(self) -> None:
        for cache, _penalty in self.levels:
            cache.flush()

    def reset_stats(self) -> None:
        for cache, _penalty in self.levels:
            cache.reset_stats()

    def access(self, byte_addresses: np.ndarray) -> float:
        """Run addresses through the hierarchy; returns total stall cycles."""
        addresses = np.asarray(byte_addresses, dtype=np.int64)
        stall = 0.0
        outstanding = addresses
        for cache, penalty in self.levels:
            if outstanding.size == 0:
                break
            hits = cache.access(outstanding)
            misses = outstanding[~hits]
            stall += penalty * misses.size
            outstanding = misses
        stall += self.memory_penalty_cycles * outstanding.size
        return stall

    def stats(self) -> dict[str, CacheStats]:
        return {cache.name: cache.stats for cache, _ in self.levels}
