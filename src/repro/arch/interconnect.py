"""Transfer-time models for the buses the devices hang off.

All three accelerator stories in the paper are shaped by data movement:

* the Cell's SPEs pull positions into local store over the **EIB** via
  DMA and push accelerations back (section 5.1);
* the GPU pays a **PCIe** upload of positions and a readback of
  accelerations every single time step (section 5.2) — the very costs
  that make it lose at small atom counts;
* the MTA-2's network gives effectively **uniform-latency** access,
  modelled as zero extra transfer cost (its latency is hidden by the
  streams and folded into the issue model).

A transfer costs ``latency + bytes / bandwidth``; batched transfers pay
the latency once per transaction.

The cluster layer (``repro.cluster``) adds a fourth mover: the
**node-to-node link** of a simulated multi-blade machine.  Ghost-region
exchange rides :class:`ClusterFabric`, which prices one bulk-synchronous
exchange phase from the per-message byte ledger the decomposition
produces.  Two topologies are modelled: ``switch`` (full-crossbar,
every node owns an independent full-duplex port, its messages overlap)
and ``ring`` (one half-duplex port per node, its messages serialize).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Mapping

__all__ = [
    "TransferModel",
    "DMAEngine",
    "PCIeBus",
    "ClusterFabric",
    "CLUSTER_TOPOLOGIES",
    "make_cluster_fabric",
]

#: Supported node-to-node wiring schemes.
CLUSTER_TOPOLOGIES = ("switch", "ring")


@dataclasses.dataclass(frozen=True)
class TransferModel:
    """First-order latency/bandwidth transfer-cost model."""

    latency_s: float
    bandwidth_bytes_per_s: float
    name: str = "link"

    def __post_init__(self) -> None:
        if self.latency_s < 0.0:
            raise ValueError(f"latency must be non-negative, got {self.latency_s}")
        if not self.bandwidth_bytes_per_s > 0.0:
            raise ValueError(
                f"bandwidth must be positive, got {self.bandwidth_bytes_per_s}"
            )

    def transfer_time(self, n_bytes: float, n_transactions: int = 1) -> float:
        """Seconds to move ``n_bytes`` in ``n_transactions`` transactions."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be non-negative, got {n_bytes}")
        if n_transactions < 1:
            raise ValueError("need at least one transaction")
        return n_transactions * self.latency_s + n_bytes / self.bandwidth_bytes_per_s


@dataclasses.dataclass(frozen=True)
class DMAEngine:
    """SPE DMA: transfers are chunked into <= ``max_transfer_bytes`` pieces.

    Real SPE DMA moves at most 16 KB per command; larger transfers are
    issued as DMA lists.  Each chunk pays the command setup latency.
    """

    link: TransferModel
    max_transfer_bytes: int = 16 * 1024

    def __post_init__(self) -> None:
        if self.max_transfer_bytes <= 0:
            raise ValueError("max_transfer_bytes must be positive")

    def transfer_time(self, n_bytes: int) -> float:
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be non-negative, got {n_bytes}")
        if n_bytes == 0:
            return 0.0
        chunks = -(-n_bytes // self.max_transfer_bytes)  # ceil division
        return self.link.transfer_time(n_bytes, n_transactions=chunks)


@dataclasses.dataclass(frozen=True)
class PCIeBus:
    """Host <-> GPU transfers, plus the per-readback synchronization stall.

    Reading results back from a 2006-era GPU forces a full pipeline
    drain before the copy can start; ``readback_sync_s`` charges it.
    """

    link: TransferModel
    readback_sync_s: float = 0.0

    def upload_time(self, n_bytes: int) -> float:
        return self.link.transfer_time(n_bytes)

    def readback_time(self, n_bytes: int) -> float:
        return self.readback_sync_s + self.link.transfer_time(n_bytes)


@dataclasses.dataclass(frozen=True)
class ClusterFabric:
    """Node-to-node interconnect of a K-node simulated cluster.

    One exchange phase moves a set of point-to-point messages
    ``(src, dst, n_bytes)``.  Every message pays the link latency, its
    wire time, and a host-side pack/unpack charge; how messages at one
    node combine depends on the topology:

    * ``switch`` — full crossbar, one dedicated full-duplex port per
      node: a node's sends overlap each other and its receives, so the
      node is done after its *largest* direction (max over per-message
      maxima of send vs receive side).
    * ``ring`` — one half-duplex port per node: all traffic touching
      the node (sent + received) serializes on that port.

    The phase completes when the slowest node is done — the
    bulk-synchronous convention the cluster step loop uses.
    """

    n_nodes: int
    topology: str = "switch"
    link: TransferModel = dataclasses.field(
        default_factory=lambda: TransferModel(
            latency_s=4.0e-6, bandwidth_bytes_per_s=0.9e9, name="cluster-link"
        )
    )
    pack_s_per_message: float = 1.5e-6

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.topology not in CLUSTER_TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; expected one of "
                f"{CLUSTER_TOPOLOGIES}"
            )
        if self.pack_s_per_message < 0.0:
            raise ValueError("pack_s_per_message must be non-negative")

    def message_time(self, n_bytes: int) -> float:
        """Seconds for one point-to-point message, pack included."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be non-negative, got {n_bytes}")
        if n_bytes == 0:
            return 0.0
        return self.pack_s_per_message + self.link.transfer_time(n_bytes)

    def exchange_seconds(
        self, messages: Iterable[tuple[int, int, int]]
    ) -> float:
        """Seconds for one bulk-synchronous exchange of ``messages``.

        ``messages`` yields ``(src, dst, n_bytes)`` triples; zero-byte
        entries cost nothing.  Self-messages are rejected — the
        decomposition must never route a node's own atoms over the
        fabric.
        """
        send_s = [0.0] * self.n_nodes
        recv_s = [0.0] * self.n_nodes
        for src, dst, n_bytes in messages:
            if not (0 <= src < self.n_nodes and 0 <= dst < self.n_nodes):
                raise ValueError(
                    f"message {src}->{dst} outside the {self.n_nodes}-node fabric"
                )
            if src == dst:
                raise ValueError(f"node {src} routed a message to itself")
            cost = self.message_time(n_bytes)
            send_s[src] += cost
            recv_s[dst] += cost
        if self.topology == "ring":
            per_node = [s + r for s, r in zip(send_s, recv_s)]
        else:
            per_node = [max(s, r) for s, r in zip(send_s, recv_s)]
        return max(per_node, default=0.0)


def make_cluster_fabric(
    n_nodes: int,
    topology: str = "switch",
    overrides: Mapping[str, float] | None = None,
) -> ClusterFabric:
    """Fabric with the calibrated 2006-era link constants.

    ``overrides`` may replace ``latency_s`` / ``bandwidth_bytes_per_s``
    / ``pack_s_per_message`` (the what-if knobs of the cluster
    experiment).
    """
    from repro.arch import calibration as cal

    values = {
        "latency_s": cal.CLUSTER_LINK_LATENCY_S,
        "bandwidth_bytes_per_s": cal.CLUSTER_LINK_BANDWIDTH_BPS,
        "pack_s_per_message": cal.CLUSTER_PACK_S_PER_MESSAGE,
    }
    values.update(overrides or {})
    return ClusterFabric(
        n_nodes=n_nodes,
        topology=topology,
        link=TransferModel(
            latency_s=float(values["latency_s"]),
            bandwidth_bytes_per_s=float(values["bandwidth_bytes_per_s"]),
            name="cluster-link",
        ),
        pack_s_per_message=float(values["pack_s_per_message"]),
    )
