"""Transfer-time models for the buses the devices hang off.

All three accelerator stories in the paper are shaped by data movement:

* the Cell's SPEs pull positions into local store over the **EIB** via
  DMA and push accelerations back (section 5.1);
* the GPU pays a **PCIe** upload of positions and a readback of
  accelerations every single time step (section 5.2) — the very costs
  that make it lose at small atom counts;
* the MTA-2's network gives effectively **uniform-latency** access,
  modelled as zero extra transfer cost (its latency is hidden by the
  streams and folded into the issue model).

A transfer costs ``latency + bytes / bandwidth``; batched transfers pay
the latency once per transaction.
"""

from __future__ import annotations

import dataclasses

__all__ = ["TransferModel", "DMAEngine", "PCIeBus"]


@dataclasses.dataclass(frozen=True)
class TransferModel:
    """First-order latency/bandwidth transfer-cost model."""

    latency_s: float
    bandwidth_bytes_per_s: float
    name: str = "link"

    def __post_init__(self) -> None:
        if self.latency_s < 0.0:
            raise ValueError(f"latency must be non-negative, got {self.latency_s}")
        if not self.bandwidth_bytes_per_s > 0.0:
            raise ValueError(
                f"bandwidth must be positive, got {self.bandwidth_bytes_per_s}"
            )

    def transfer_time(self, n_bytes: float, n_transactions: int = 1) -> float:
        """Seconds to move ``n_bytes`` in ``n_transactions`` transactions."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be non-negative, got {n_bytes}")
        if n_transactions < 1:
            raise ValueError("need at least one transaction")
        return n_transactions * self.latency_s + n_bytes / self.bandwidth_bytes_per_s


@dataclasses.dataclass(frozen=True)
class DMAEngine:
    """SPE DMA: transfers are chunked into <= ``max_transfer_bytes`` pieces.

    Real SPE DMA moves at most 16 KB per command; larger transfers are
    issued as DMA lists.  Each chunk pays the command setup latency.
    """

    link: TransferModel
    max_transfer_bytes: int = 16 * 1024

    def __post_init__(self) -> None:
        if self.max_transfer_bytes <= 0:
            raise ValueError("max_transfer_bytes must be positive")

    def transfer_time(self, n_bytes: int) -> float:
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be non-negative, got {n_bytes}")
        if n_bytes == 0:
            return 0.0
        chunks = -(-n_bytes // self.max_transfer_bytes)  # ceil division
        return self.link.transfer_time(n_bytes, n_transactions=chunks)


@dataclasses.dataclass(frozen=True)
class PCIeBus:
    """Host <-> GPU transfers, plus the per-readback synchronization stall.

    Reading results back from a 2006-era GPU forces a full pipeline
    drain before the copy can start; ``readback_sync_s`` charges it.
    """

    link: TransferModel
    readback_sync_s: float = 0.0

    def upload_time(self, n_bytes: int) -> float:
        return self.link.transfer_time(n_bytes)

    def readback_time(self, n_bytes: int) -> float:
        return self.readback_sync_s + self.link.transfer_time(n_bytes)
