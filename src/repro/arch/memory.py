"""Memory-structure models: SPE local store and plain capacity math."""

from __future__ import annotations

import dataclasses

__all__ = ["LocalStore", "LocalStoreOverflow", "array_bytes"]


class LocalStoreOverflow(RuntimeError):
    """Raised when an SPE kernel's working set exceeds the local store."""


def array_bytes(n_elements: int, element_bytes: int) -> int:
    """Size in bytes of an array of ``n_elements`` ``element_bytes`` items."""
    if n_elements < 0 or element_bytes <= 0:
        raise ValueError("invalid array size parameters")
    return n_elements * element_bytes


@dataclasses.dataclass
class LocalStore:
    """The SPE's 256 KB fixed-latency local store.

    Code and data share it; ``reserved_bytes`` models the kernel text,
    stack and runtime.  Allocations are tracked so the Cell device can
    decide when a workload must be tiled instead of resident.
    """

    capacity_bytes: int = 256 * 1024
    reserved_bytes: int = 48 * 1024
    allocations: dict[str, int] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= self.reserved_bytes < self.capacity_bytes:
            raise ValueError("reserved_bytes must fit inside the capacity")

    @property
    def used_bytes(self) -> int:
        return self.reserved_bytes + sum(self.allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def allocate(self, name: str, n_bytes: int) -> None:
        """Reserve ``n_bytes`` under ``name``; raises on overflow."""
        if n_bytes < 0:
            raise ValueError(f"allocation size must be non-negative, got {n_bytes}")
        if name in self.allocations:
            raise ValueError(f"allocation {name!r} already exists")
        if n_bytes > self.free_bytes:
            raise LocalStoreOverflow(
                f"allocating {n_bytes} B for {name!r} exceeds free local store "
                f"({self.free_bytes} B of {self.capacity_bytes} B)"
            )
        self.allocations[name] = n_bytes

    def release(self, name: str) -> None:
        if name not in self.allocations:
            raise KeyError(f"no allocation named {name!r}")
        del self.allocations[name]

    def fits(self, n_bytes: int) -> bool:
        return n_bytes <= self.free_bytes
