"""Cycle <-> wall-clock conversion for a device clock domain."""

from __future__ import annotations

import dataclasses

__all__ = ["Clock"]


@dataclasses.dataclass(frozen=True)
class Clock:
    """A fixed-frequency clock domain."""

    hz: float
    name: str = "clock"

    def __post_init__(self) -> None:
        if not self.hz > 0.0:
            raise ValueError(f"clock frequency must be positive, got {self.hz}")

    def seconds(self, cycles: float) -> float:
        """Wall-clock seconds for ``cycles`` cycles."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        return cycles / self.hz

    def cycles(self, seconds: float) -> float:
        """Cycles elapsed in ``seconds`` seconds."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        return seconds * self.hz

    @property
    def period(self) -> float:
        """Seconds per cycle."""
        return 1.0 / self.hz
