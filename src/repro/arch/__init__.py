"""Architecture substrate: clocks, caches, buses, the Device contract."""

from repro.arch.cache import Cache, CacheHierarchy, CacheStats
from repro.arch.clock import Clock
from repro.arch.device import Device, DeviceRunResult, merge_breakdowns
from repro.arch.interconnect import DMAEngine, PCIeBus, TransferModel
from repro.arch.memory import LocalStore, LocalStoreOverflow, array_bytes
from repro.arch.profilecounts import KernelMetrics, pair_trip_metrics

__all__ = [
    "Cache",
    "CacheHierarchy",
    "CacheStats",
    "Clock",
    "DMAEngine",
    "Device",
    "DeviceRunResult",
    "KernelMetrics",
    "LocalStore",
    "LocalStoreOverflow",
    "PCIeBus",
    "TransferModel",
    "array_bytes",
    "merge_breakdowns",
    "pair_trip_metrics",
]
