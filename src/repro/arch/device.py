"""The Device contract: functional physics + simulated timing, together.

A device model must *actually run* the MD physics (through its force
backend, in its native precision) and, for every step, report simulated
wall-clock components derived from its cost model and the measured
kernel metrics of that step.  :meth:`Device.run` is the template method
tying the two halves to the MD driver; subclasses implement the two
abstract hooks.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Any

import numpy as np

from repro.arch.profilecounts import KernelMetrics, pair_trip_metrics
from repro.faults.checkpoint import CheckpointManager, RestoreBudgetExceeded
from repro.faults.detect import EnergyDriftWatchdog
from repro.faults.plan import FaultPlan
from repro.faults.session import FaultSession, UnrecoveredFaultError
from repro.md.forces import ForceResult
from repro.md.simulation import MDConfig, MDSimulation, StepRecord
from repro.obs.context import ambient_observation
from repro.obs.observe import Observation

__all__ = ["Device", "DeviceRunResult", "merge_breakdowns"]


def merge_breakdowns(*breakdowns: dict[str, float]) -> dict[str, float]:
    """Sum per-component second tallies."""
    merged: dict[str, float] = {}
    for breakdown in breakdowns:
        for key, value in breakdown.items():
            merged[key] = merged.get(key, 0.0) + value
    return merged


@dataclasses.dataclass(frozen=True)
class DeviceRunResult:
    """Outcome of simulating ``n_steps`` MD steps on a device model."""

    device: str
    config: MDConfig
    n_steps: int
    setup_seconds: float
    step_seconds: tuple[float, ...]
    step_breakdowns: tuple[dict[str, float], ...]
    breakdown: dict[str, float]
    records: tuple[StepRecord, ...]
    final_positions: np.ndarray
    final_velocities: np.ndarray
    #: structured fault audit trail (event dicts) when the run executed
    #: under a fault plan; empty tuple otherwise
    fault_events: tuple[dict[str, Any], ...] = ()
    #: accounting tallies from the fault session (injected/recovered/...)
    fault_summary: dict[str, Any] = dataclasses.field(default_factory=dict)
    #: hardware counters accumulated by this run when observed (the
    #: delta against whatever the Observation held beforehand); empty
    #: dict when the run was unobserved
    counters: dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Simulated run time excluding one-time setup (the paper's
        Figure-7 convention: startup "is not included in these results")."""
        return float(sum(self.step_seconds))

    @property
    def total_seconds_with_setup(self) -> float:
        return self.setup_seconds + self.total_seconds

    @property
    def seconds_per_step(self) -> float:
        if self.n_steps == 0:
            return 0.0
        return self.total_seconds / self.n_steps

    def component(self, name: str) -> float:
        return self.breakdown.get(name, 0.0)


class Device(abc.ABC):
    """Base class for the four device models."""

    #: human-readable device name
    name: str = "device"
    #: native arithmetic precision ("float32" on Cell/GPU, "float64"
    #: on Opteron/MTA-2 — section 3.5 of the paper)
    precision: str = "float64"
    #: functional force path, a :mod:`repro.md.forcefield` registry name.
    #: "all-pairs" reproduces the paper's deliberate O(N^2) formulation;
    #: "cell" swaps in the linked-cell engine so large-N sweeps stay
    #: feasible (the *simulated* cost model is unchanged — it prices the
    #: paper's kernel from the step's measured metrics either way).
    force_path: str = "all-pairs"
    #: scope under which this device reads tuned knob values — a tuned
    #: config key ``"<tune_family>/<knob>"`` applies only to devices of
    #: that family (see :mod:`repro.tune.context`)
    tune_family: str = "host"

    @abc.abstractmethod
    def force_backend(self, sim_box, potential):
        """Return the functional force callable for this device.

        The callable maps positions -> :class:`ForceResult` and must
        perform arithmetic in the device's native precision.
        """

    def functional_backend(self, sim_box, potential):
        """Resolve :attr:`force_path` through the backend registry.

        The concrete devices' NumPy-level ("fast") force paths all
        delegate here, so every device honors a ``force_path`` override;
        instruction-level VM paths ignore it by design.  Active tuned
        knob values for this device's :attr:`tune_family` become factory
        options; with no tuning in effect the factory defaults apply
        unchanged.
        """
        from repro.md.forcefield import make_force_backend, tuned_backend_options

        options = tuned_backend_options(self.force_path, self.tune_family)
        return make_force_backend(
            self.force_path,
            sim_box,
            potential,
            dtype=np.dtype(self.precision),
            **options,
        )

    @abc.abstractmethod
    def step_seconds(
        self, metrics: KernelMetrics, step_index: int
    ) -> dict[str, float]:
        """Simulated seconds for one MD step, broken down by component."""

    def setup_breakdown(self) -> dict[str, float]:
        """One-time setup costs (JIT compile, first thread launch, ...)."""
        return {}

    def prepare(self, config: MDConfig) -> None:
        """Hook called once per run before stepping (program builds, ...)."""

    def workers(self) -> int:
        """How many workers split the ordered pair scan (SPE count, ...)."""
        return 1

    def branch_probabilities(self, config: MDConfig) -> dict[str, float]:
        """Measured data-dependent branch probabilities for this workload.

        Devices whose kernels contain IfBlocks override this with values
        measured by the VM on a calibration system; the base returns {}.
        """
        return {}

    @property
    def observation(self) -> Observation | None:
        """The active :class:`Observation` during :meth:`run`, else ``None``.

        Device hooks may consult this mid-run; counter charging and span
        emission happen through :meth:`observe_step`, called by the
        template method once per completed step.
        """
        return getattr(self, "_observation", None)

    @property
    def fault_session(self) -> FaultSession | None:
        """The active fault session during :meth:`run`, else ``None``.

        Device hooks (DMA transfers, mailbox signals, cost-model step
        pricing) consult this to draw and recover injected faults; with
        no session — or a zero-rate plan — every hook is a no-op.
        """
        return getattr(self, "_fault_session", None)

    def run(
        self,
        config: MDConfig,
        n_steps: int,
        faults: FaultPlan | None = None,
        observe: "Observation | bool | None" = None,
    ) -> DeviceRunResult:
        """Run ``n_steps`` of MD functionally and accumulate simulated time.

        With a :class:`FaultPlan`, the run executes under a fault
        session: device hooks inject/recover transfer faults, the force
        path runs behind the numeric guard, and an energy-drift watchdog
        backs the simulation up to the last good checkpoint when silent
        corruption slips through.  All recovery is charged in simulated
        seconds (the ``fault_recovery`` breakdown component).  A
        zero-rate plan is bit-identical to ``faults=None``.

        ``observe`` controls hardware-counter and timeline collection:
        an explicit :class:`~repro.obs.observe.Observation` records into
        that object, ``None`` (the default) records into the ambient
        :func:`~repro.obs.context.collect` session if one is active (and
        is otherwise completely off), and ``False`` forces observation
        off.  Observation never changes timing or physics results.
        """
        if n_steps < 0:
            raise ValueError(f"n_steps must be non-negative, got {n_steps}")
        config = dataclasses.replace(config, dtype=self.precision)
        session = FaultSession(faults) if faults is not None else None
        if observe is None:
            obs = ambient_observation(self.name)
        elif observe is False:
            obs = None
        else:
            obs = observe
        self._fault_session = session
        self._observation = obs
        try:
            return self._run(config, n_steps, session)
        finally:
            self._fault_session = None
            self._observation = None

    def _run(
        self, config: MDConfig, n_steps: int, session: FaultSession | None
    ) -> DeviceRunResult:
        self.prepare(config)
        box = config.make_box()
        potential = config.make_potential()
        backend = self.force_backend(box, potential)
        if session is not None:
            session.enabled = False  # checkpoint 0 must be trustworthy
            backend = session.guard_backend(backend)

        last_result: dict[str, ForceResult] = {}

        def recording_backend(positions: np.ndarray) -> ForceResult:
            result = backend(positions)
            last_result["value"] = result
            return result

        sim = MDSimulation(config, force_backend=recording_backend)
        watchdog: EnergyDriftWatchdog | None = None
        manager: CheckpointManager | None = None
        if session is not None:
            watchdog = EnergyDriftWatchdog(
                tolerance=session.plan.watchdog_tolerance,
                window=session.plan.watchdog_window,
            )
            watchdog.arm(sim.records[0].total_energy)
            manager = CheckpointManager(
                interval=session.plan.checkpoint_interval,
                max_restores=session.plan.max_restores,
            )
            manager.take(sim)
            session.enabled = True

        branch_probs = self.branch_probabilities(config)
        obs = self.observation
        counter_baseline = obs.counters.as_dict() if obs is not None else {}
        step_seconds: list[float] = []
        breakdowns: list[dict[str, float]] = []
        while sim.step_count < n_steps:
            step_index = len(step_seconds)
            if session is not None:
                session.begin_step(step_index + 1)
            record = sim.step()
            result = last_result["value"]
            metrics = pair_trip_metrics(
                n_atoms=config.n_atoms,
                interacting_pairs=result.interacting_pairs,
                workers=self.workers(),
                branch_probabilities=branch_probs,
            )
            parts = self.step_seconds(metrics, step_index)
            if session is not None:
                recovery = session.drain_pending()
                retries = session.drain_retries()
                if retries:
                    # Each recompute re-pays the whole step's kernel path.
                    recovery += retries * sum(parts.values())
                recovery += session.drain_carried()
                if recovery > 0.0:
                    parts = dict(parts)
                    parts["fault_recovery"] = (
                        parts.get("fault_recovery", 0.0) + recovery
                    )
            breakdowns.append(parts)
            step_seconds.append(sum(parts.values()))
            if obs is not None:
                # A watchdog restore rewinds step_seconds but not the
                # observation: the trace keeps the wasted work visible
                # (that is the point of a timeline) and the counters keep
                # charging real executed work.
                self._observe_step(obs, metrics, parts, step_index)
            if session is not None:
                assert watchdog is not None and manager is not None
                if watchdog.observe(record.total_energy):
                    checkpoint = manager.last
                    assert checkpoint is not None
                    wasted = float(sum(step_seconds[checkpoint.step :]))
                    try:
                        manager.note_restore()
                    except RestoreBudgetExceeded as exc:
                        session.log.append(
                            sim.step_count, "vm.bitflip", "aborted",
                            {"faults": session.silent_pending,
                             "reason": str(exc)},
                        )
                        raise UnrecoveredFaultError(str(exc), session.log) from exc
                    session.note_restore(
                        sim.step_count,
                        checkpoint.step,
                        wasted,
                        watchdog.drift(record.total_energy),
                    )
                    sim.restore(checkpoint)
                    del step_seconds[checkpoint.step :]
                    del breakdowns[checkpoint.step :]
                    continue
                manager.maybe_take(sim)

        setup = self.setup_breakdown()
        return DeviceRunResult(
            device=self.name,
            config=config,
            n_steps=n_steps,
            setup_seconds=sum(setup.values()),
            step_seconds=tuple(step_seconds),
            step_breakdowns=tuple(breakdowns),
            breakdown=merge_breakdowns(*breakdowns),
            records=tuple(sim.records),
            final_positions=np.array(sim.state.positions, copy=True),
            final_velocities=np.array(sim.state.velocities, copy=True),
            fault_events=tuple(session.log.to_dicts()) if session else (),
            fault_summary=session.summary() if session else {},
            counters=(
                obs.counters.delta(counter_baseline) if obs is not None else {}
            ),
        )

    # -- observability -------------------------------------------------

    def _observe_step(
        self,
        obs: Observation,
        metrics: KernelMetrics,
        parts: dict[str, float],
        step_index: int,
    ) -> None:
        """Charge the generic counters and the ``step`` span, then
        delegate to :meth:`observe_step` and advance the cursor."""
        total = sum(parts.values())
        workers = self.workers()
        obs.charge("step.count", 1)
        obs.charge("sim.seconds", total)
        obs.charge("pairs.examined", round(metrics.pairs_examined * workers))
        obs.charge(
            "pairs.interacting",
            round(
                metrics.pairs_examined * workers * metrics.interacting_fraction
            ),
        )
        obs.span_at(
            "step", "step", 0.0, total, args={"step": step_index, **parts}
        )
        self.observe_step(obs, metrics, parts, step_index)
        obs.advance(total)

    def observe_step(
        self,
        obs: Observation,
        metrics: KernelMetrics,
        parts: dict[str, float],
        step_index: int,
    ) -> None:
        """Device-specific counters and spans for one completed step.

        ``parts`` is the step's final component breakdown (including any
        ``fault_recovery`` surcharge).  The default lays the components
        end to end, each on a lane named after itself; devices with
        concurrent hardware units (SPEs, pipelines, streams) override
        this to emit one lane per unit and charge their hardware
        counters.  Implementations must *recompute* whatever they need
        from the same inputs ``step_seconds`` used — never mutate
        simulation state.
        """
        offset = 0.0
        for name, seconds in parts.items():
            if seconds > 0.0:
                obs.span_at(name, name, offset, seconds, args={"step": step_index})
                offset += seconds
