"""Shared kernel-metrics plumbing between the MD engine and cost models.

Every device cost model consumes the same small set of measured
quantities per time step; :class:`KernelMetrics` names them once.  The
values come from the *functional* run (pair counts measured by the NumPy
kernel, branch probabilities measured by the VM interpreter on a
calibration-sized system), never from guesses.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

__all__ = ["KernelMetrics", "pair_trip_metrics"]


@dataclasses.dataclass(frozen=True)
class KernelMetrics:
    """Per-step measured quantities driving the cycle models.

    Attributes
    ----------
    n_atoms:
        System size N.
    pairs_examined:
        Ordered pair-loop trip count for the device's loop structure.
        The paper's kernels visit all ordered pairs (each atom scans all
        other atoms), i.e. ``N * (N - 1)``; devices that split rows
        across workers divide this among them.
    interacting_fraction:
        Measured share of examined pairs inside the cutoff.
    branch_probabilities:
        Measured P(taken) per named data-dependent branch.
    """

    n_atoms: int
    pairs_examined: float
    interacting_fraction: float
    branch_probabilities: Mapping[str, float] = dataclasses.field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.n_atoms < 1:
            raise ValueError(f"n_atoms must be >= 1, got {self.n_atoms}")
        if self.pairs_examined < 0:
            raise ValueError("pairs_examined must be non-negative")
        if not 0.0 <= self.interacting_fraction <= 1.0:
            raise ValueError(
                f"interacting_fraction {self.interacting_fraction} outside [0, 1]"
            )

    def as_dict(self) -> dict[str, float]:
        """Flatten to the metrics mapping the VM scheduler consumes."""
        metrics: dict[str, float] = {
            "atoms": float(self.n_atoms),
            "pairs": float(self.pairs_examined),
            "interacting": self.pairs_examined * self.interacting_fraction,
            "interacting_fraction": self.interacting_fraction,
            "one": 1.0,
        }
        for key, prob in self.branch_probabilities.items():
            metrics[key] = float(prob)
        return metrics


def pair_trip_metrics(
    n_atoms: int,
    interacting_pairs: int,
    workers: int = 1,
    branch_probabilities: Mapping[str, float] | None = None,
) -> KernelMetrics:
    """Metrics for one worker of an ordered all-pairs scan.

    ``interacting_pairs`` counts *unordered* interacting pairs as
    reported by :class:`repro.md.forces.ForceResult`; the ordered scan
    sees each twice.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    ordered_pairs = n_atoms * (n_atoms - 1) / workers
    total_ordered = n_atoms * (n_atoms - 1)
    fraction = (
        2.0 * interacting_pairs / total_ordered if total_ordered > 0 else 0.0
    )
    return KernelMetrics(
        n_atoms=n_atoms,
        pairs_examined=ordered_pairs,
        interacting_fraction=min(1.0, fraction),
        branch_probabilities=dict(branch_probabilities or {}),
    )
