"""Every calibration constant of the performance models, in one place.

Each value is either taken directly from the paper, from period
datasheets for the named parts, or is a tuning constant whose role and
justification is stated.  The benchmark suite asserts *shape* targets
(orderings, ratios, crossovers) from the paper's prose, so these numbers
are load-bearing and must not be scattered through the code.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Clocks
# --------------------------------------------------------------------------

#: Baseline processor: "a 2.2 GHz Opteron system" (abstract, section 5).
OPTERON_CLOCK_HZ = 2.2e9

#: Cell BE SPE clock (3.2 GHz in the QS20-era blades the paper used).
SPE_CLOCK_HZ = 3.2e9

#: PPE clock — same 3.2 GHz physical clock as the SPEs.
PPE_CLOCK_HZ = 3.2e9

#: NVIDIA GeForce 7900GTX core clock (650 MHz, G71 datasheet).
GPU_CLOCK_HZ = 650.0e6

#: MTA-2 processor clock: the paper says the MTA-2 clock is "about 11x
#: slower than the 2.2 GHz Opteron" (section 5.3) => 200 MHz ("200 GHz"
#: in the text is a typo for 200 MHz).
MTA_CLOCK_HZ = 200.0e6

# --------------------------------------------------------------------------
# Parallel widths
# --------------------------------------------------------------------------

#: "one 64-bit Power Processing Element (PPE) and eight Synergistic
#: Processing Elements (SPEs)" (section 3.1).
CELL_N_SPES = 8

#: GeForce 7900GTX fragment pipelines ("the next generation from NVIDIA
#: contained 24 pipelines", section 3.2 — the 7900GTX is that part).
GPU_N_PIPELINES = 24

#: "128 in the MTA-2 system processors" hardware streams (section 3.3).
MTA_N_STREAMS = 128

#: Largest possible MTA-2 system (section 3.3.1) — used by the XMT
#: projection ablation, not the single-processor experiments.
MTA_MAX_PROCESSORS = 256

# --------------------------------------------------------------------------
# Cell: threads, DMA, mailboxes, local store
# --------------------------------------------------------------------------

#: Seconds to create one SPE thread (spe_create_thread + context load on
#: the paper's 2.6-series kernel).  Tuning constant: chosen so that with
#: respawn-per-step the 8-SPE version is only ~1.5x faster than 1 SPE
#: while launch-once restores ~4.5x (Figure 6's story).
SPE_THREAD_LAUNCH_S = 14.0e-3

#: Mailbox send/receive cost, seconds.  "channels ('mailboxes') ... for
#: blocking sends or receives of information on the order of bytes"
#: (section 5.1): microseconds, i.e. negligible next to thread launch.
SPE_MAILBOX_S = 2.0e-6

#: EIB DMA: ~25.6 GB/s per SPE peak to main memory, a few microseconds
#: of command setup.
EIB_DMA_LATENCY_S = 1.0e-6
EIB_DMA_BANDWIDTH_BPS = 25.6e9
EIB_DMA_MAX_TRANSFER_BYTES = 16 * 1024

#: SPE local store (section 3.1: "a small (256KB) fixed-latency local
#: store"); reserve covers kernel text + stack + runtime.
SPE_LOCAL_STORE_BYTES = 256 * 1024
SPE_LOCAL_STORE_RESERVED_BYTES = 48 * 1024

#: SPE taken-branch penalty, cycles: "no branch prediction" (section
#: 3.1); the SPU pipeline flush is ~18 cycles.
SPE_BRANCH_PENALTY_CYCLES = 18

#: PPE scalar slowdown vs. the optimized SPE kernel.  The PPE runs the
#: *original* scalar kernel (no SIMDization) and is an in-order core with
#: a long pipeline; Table 1 reports 8 SPEs = 26x PPE-only.  Tuning
#: constant applied as a CPI multiplier on the PPE cost table.
PPE_CPI_FACTOR = 1.4

# --------------------------------------------------------------------------
# GPU: PCIe, driver, JIT
# --------------------------------------------------------------------------

#: PCIe x16 gen-1 effective host<->GPU bandwidth (~1.4 GB/s measured on
#: period hardware, 4 GB/s theoretical) and per-transaction latency.
PCIE_BANDWIDTH_BPS = 1.4e9
PCIE_LATENCY_S = 15.0e-6

#: Readback synchronization: the GPU pipeline must drain before glReadPixels
#: returns; milliseconds on 2006 drivers.  Tuning constant: sets the
#: small-N side of Figure 7's crossover together with the per-step
#: driver overhead below.
GPU_READBACK_SYNC_S = 1.2e-3

#: Per-time-step driver/API overhead (texture binds, FBO setup, shader
#: dispatch): a few ms on 2006-era OpenGL stacks.
GPU_STEP_OVERHEAD_S = 2.0e-3

#: One-time setup: "There is a startup cost associated with the GPU
#: implementation; however, it is a fraction of a second" (section 5.2).
GPU_JIT_SETUP_S = 0.35

#: Texture-fetch issue cost per fetch, shader cycles.  G71 fragment
#: units co-issue math with texture fetches imperfectly; fetching a
#: non-cached texel costs several cycles of the pipeline.
GPU_TEXFETCH_CYCLES = 4

#: Fraction of peak pipeline issue actually achieved by the shader.
#: The MD inner loop issues one dependent texture fetch per partner
#: position, which throttles the math pipes; measured arithmetic
#: efficiencies of G71-era GPGPU kernels were 10-20% of peak.  Tuning
#: constant: lands the 2048-atom GPU time ~6x below the Opteron.
GPU_PIPELINE_EFFICIENCY = 0.205

# --------------------------------------------------------------------------
# MTA-2
# --------------------------------------------------------------------------

#: Saturated MTA-2 processor: one instruction per cycle (section 3.3).
MTA_ISSUE_PER_CYCLE = 1.0

#: A single stream can issue a new instruction at most once every ~21
#: cycles (the MTA pipeline depth): this is the serial-code slowdown that
#: punishes the partially-multithreaded version in Figure 8.
MTA_SERIAL_ISSUE_GAP_CYCLES = 21

#: Threads the compiler materializes per parallel loop; saturation needs
#: >= MTA_N_STREAMS ready streams.
MTA_THREADS_PER_LOOP = 128

# --------------------------------------------------------------------------
# Opteron memory hierarchy (AMD K8, 2.2 GHz, 2006)
# --------------------------------------------------------------------------

OPTERON_L1_BYTES = 64 * 1024
OPTERON_L1_WAYS = 2
OPTERON_L1_LINE_BYTES = 64
#: L2 load-to-use penalty beyond L1.  The raw K8 figure is ~12 cycles;
#: the paper-era kernel issues dependent loads with no software
#: prefetch, so queuing, DTLB walks and bank conflicts push the
#: effective per-miss cost to ~24.  Tuning constant: sets the size of
#: Figure 9's post-knee divergence.
OPTERON_L2_PENALTY_CYCLES = 24.0

OPTERON_L2_BYTES = 1024 * 1024
OPTERON_L2_WAYS = 16
OPTERON_L2_LINE_BYTES = 64
#: Main-memory penalty beyond L2 (K8 + DDR: ~180 cycles at 2.2 GHz).
OPTERON_MEMORY_PENALTY_CYCLES = 180.0

# --------------------------------------------------------------------------
# XMT projection (the paper's "future plans" — ablation abl-xmt)
# --------------------------------------------------------------------------

#: "The XMT multithreaded processors will operate at a higher clock rate"
#: (section 3.3.1): 500 MHz per the Cray XMT announcement.
XMT_CLOCK_HZ = 500.0e6

#: "the XMT design allows systems with up to 8000 processors".
XMT_MAX_PROCESSORS = 8192

# --------------------------------------------------------------------------
# Workload element sizes
# --------------------------------------------------------------------------

#: Positions/accelerations on Cell and GPU travel as 4-component
#: single-precision vectors ("on a GPU we must use 4-component arrays",
#: section 5.2; SPE registers are 128-bit).
VEC4_F32_BYTES = 16

#: Double-precision 3-vectors on the Opteron/MTA side.
VEC3_F64_BYTES = 24

# --------------------------------------------------------------------------
# Cluster interconnect (node-to-node, 2006-era fabric)
# --------------------------------------------------------------------------

#: Node-to-node message latency.  InfiniBand 4x SDR blades of the
#: period reached ~4 us MPI half-round-trip; the Cell blades the paper
#: anticipates ("future work ... multiple Cell processors") shipped
#: with exactly this class of fabric.
CLUSTER_LINK_LATENCY_S = 4.0e-6

#: Effective per-port node-to-node bandwidth.  IB 4x SDR moves 8 Gb/s
#: on the wire; protocol + PCI-X host adapters of 2006 landed ~0.9 GB/s
#: of payload.
CLUSTER_LINK_BANDWIDTH_BPS = 0.9e9

#: Per-message host-side pack/unpack cost (gathering boundary atom rows
#: into a send buffer and scattering received ghosts).  Charged once
#: per message on top of the wire time.
CLUSTER_PACK_S_PER_MESSAGE = 1.5e-6
