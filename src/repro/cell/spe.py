"""The SPE machine model: cost table, local store, and the pair-kernel driver.

The SPE (section 3.1 of the paper) is a dual-issue in-order core:
arithmetic goes down the *even* pipe, loads/stores/shuffles/branches
down the *odd* pipe, one instruction per pipe per cycle.  There is no
branch prediction (taken branches flush ~18 cycles) and no FP
divide/sqrt hardware — kernels use reciprocal/rsqrt estimates plus
Newton refinement.  Latencies below are the published SPU figures
(Flachs et al., IEEE JSSC 41(1), cited as [13] by the paper).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.arch import calibration as cal
from repro.arch.clock import Clock
from repro.arch.memory import LocalStore
from repro.vm.isa import EVEN, ODD, CostTable, OpCost
from repro.vm.machine import Machine, resolve_exec_backend
from repro.vm.program import Program
from repro.vm.schedule import estimate_cycles

__all__ = ["SPE_COST_TABLE", "SPE", "SpePairSweep"]

#: SPU instruction costs: (latency, pipe).  Single-precision FP is the
#: 6-cycle fully-pipelined FPU; estimates are 4-cycle lookups; the
#: interpolate step is 7 cycles; loads/stores hit the fixed-latency
#: local store in 6 cycles; shuffles/rotates are 4-cycle odd-pipe ops.
SPE_COST_TABLE = CostTable(
    name="spe",
    issue_width=2,
    costs={
        "fa": OpCost(6, EVEN),
        "fs": OpCost(6, EVEN),
        "fm": OpCost(6, EVEN),
        "fma": OpCost(6, EVEN),
        "fms": OpCost(6, EVEN),
        "fnms": OpCost(6, EVEN),
        "frest": OpCost(4, EVEN),
        "frsqest": OpCost(4, EVEN),
        "fi": OpCost(7, EVEN),
        "fabs": OpCost(2, EVEN),
        "fneg": OpCost(2, EVEN),
        "fmin": OpCost(2, EVEN),
        "fmax": OpCost(2, EVEN),
        "fround": OpCost(8, EVEN),  # no native round: synthesized
        "cpsgn": OpCost(2, EVEN),
        "fcgt": OpCost(2, EVEN),
        "fclt": OpCost(2, EVEN),
        "fceq": OpCost(2, EVEN),
        "and_": OpCost(2, EVEN),
        "or_": OpCost(2, EVEN),
        "il": OpCost(2, EVEN),
        "ilv": OpCost(2, EVEN),
        "selb": OpCost(2, ODD),
        "mov": OpCost(2, ODD),
        "splat": OpCost(4, ODD),
        "shufb": OpCost(4, ODD),
        "rotqbyi": OpCost(4, ODD),
        "lqd": OpCost(6, ODD),
        "stqd": OpCost(6, ODD),
    },
)


@dataclasses.dataclass
class SPE:
    """One Synergistic Processing Element."""

    index: int
    clock: Clock = dataclasses.field(
        default_factory=lambda: Clock(cal.SPE_CLOCK_HZ, "spe")
    )
    local_store: LocalStore = dataclasses.field(
        default_factory=lambda: LocalStore(
            capacity_bytes=cal.SPE_LOCAL_STORE_BYTES,
            reserved_bytes=cal.SPE_LOCAL_STORE_RESERVED_BYTES,
        )
    )

    def kernel_seconds(self, program: Program, metrics: dict[str, float]) -> float:
        """Simulated seconds for this SPE to execute ``program``."""
        report = estimate_cycles(program, SPE_COST_TABLE, metrics)
        return self.clock.seconds(report.total_cycles)


class SpePairSweep:
    """Functional execution of a per-pair SPE kernel over an atom range.

    Models one SPE thread's job: for each atom ``i`` in ``rows``, scan
    *all* atoms ``j != i`` (the paper's kernel checks all N-1 partners),
    accumulating the acceleration of atom ``i`` and the per-atom PE
    contribution.  Arithmetic is float32 throughout, as on hardware.

    Defaults to the ``compiled`` VM backend (the sweep only reads the
    kernel's declared outputs, so the interpreter's full-env
    side-effects buy nothing here); pass ``exec_backend="interp"`` or
    set ``REPRO_VM_EXEC`` to override.  Constant registers, ``zero``,
    and the ``self_flag`` buffer are built once per batch size and
    reused across row blocks instead of being re-materialized as fresh
    ``(batch, width)`` arrays for every block.
    """

    def __init__(
        self,
        program: Program,
        width: int = 4,
        exec_backend: str | None = None,
    ) -> None:
        self.program = program
        self.machine = Machine(
            width=width,
            dtype=np.float32,
            exec_backend=resolve_exec_backend(
                exec_backend, default="compiled", device="cell"
            ),
        )
        self._env_cache: dict[int, dict[str, np.ndarray]] = {}
        self._env_constants: tuple | None = None

    def _block_env(self, batch: int, constants: dict[str, float]) -> dict[str, np.ndarray]:
        """Constant/zero/self_flag registers for ``batch``, cached.

        The returned dict is the cache entry itself — callers copy it
        into a fresh env (cheap; the arrays are shared) and may mutate
        only ``self_flag``, which is re-zeroed on every block.
        """
        key = tuple(sorted(constants.items()))
        if key != self._env_constants:
            self._env_cache.clear()
            self._env_constants = key
        cached = self._env_cache.get(batch)
        if cached is None:
            machine = self.machine
            cached = {
                name: machine.make_register(batch, float(value))
                for name, value in constants.items()
            }
            cached["zero"] = machine.make_register(batch, 0.0)
            cached["self_flag"] = machine.make_register(batch, 0.0)
            if len(self._env_cache) > 8:
                self._env_cache.clear()
            self._env_cache[batch] = cached
        return cached

    def run(
        self,
        positions: np.ndarray,
        rows: np.ndarray,
        constants: dict[str, float],
        row_block: int = 128,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Returns (accelerations[rows], pe_contribution[rows])."""
        positions32 = np.asarray(positions, dtype=np.float32)
        n = positions32.shape[0]
        rows = np.asarray(rows, dtype=np.intp)
        acc = np.zeros((rows.size, 3), dtype=np.float32)
        pe = np.zeros(rows.size, dtype=np.float32)
        machine = self.machine

        for start in range(0, rows.size, row_block):
            block = rows[start : start + row_block]
            # batch = (block rows) x (all j): flatten to pairs
            xi = np.repeat(positions32[block], n, axis=0)
            xj = np.tile(positions32, (block.size, 1))
            # Displace self-pairs far outside the cutoff so the rsqrt
            # estimate never sees r2 == 0 (they are excluded by
            # self_flag regardless; this only silences inf/nan lanes).
            j_index = np.tile(np.arange(n), block.size)
            i_index = np.repeat(block, n)
            self_rows = i_index == j_index
            xj[self_rows, 0] += 1.0e3
            env: dict[str, np.ndarray] = {
                "xi": machine.load_vec3(xi),
                "xj": machine.load_vec3(xj),
            }
            batch = env["xi"].shape[0]
            env.update(self._block_env(batch, constants))
            self_flag = env["self_flag"]
            self_flag.fill(0.0)
            self_flag[self_rows] = 1.0

            machine.run_segment(self.program, "pair", env)

            fvec = env["acc_out"].reshape(block.size, n, machine.width)
            pe_pair = env["pe_out"].reshape(block.size, n, machine.width)
            acc[start : start + block.size] = fvec[:, :, :3].sum(
                axis=1, dtype=np.float32
            )
            pe[start : start + block.size] = pe_pair[:, :, 0].sum(
                axis=1, dtype=np.float32
            )
        return acc, pe

    def run_replicas(
        self,
        positions: np.ndarray,
        rows: np.ndarray,
        constants: dict[str, float],
        row_block: int = 128,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched multi-replica sweep: R position sets, one VM program run.

        ``positions`` is (R, n, 3) — R independent replicas (different
        seeds/temperatures; the box and potential are shared, since the
        SPE kernels bake the box length into their reflection
        immediates).  Replica r occupies rows ``r*B .. (r+1)*B-1`` of
        the pair batch, so under the ``fused`` backend all replicas
        execute through one closure call per block; other backends fall
        back to a per-replica loop inside :meth:`Machine.run_program`
        with bit-identical results.  Returns ``(acc (R, rows, 3),
        pe (R, rows))``, each replica's slice bit-identical to a
        single-replica :meth:`run`.
        """
        positions32 = np.asarray(positions, dtype=np.float32)
        if positions32.ndim != 3:
            raise ValueError(
                f"expected (replicas, n, 3) positions, got {positions32.shape}"
            )
        replicas, n, _ = positions32.shape
        rows = np.asarray(rows, dtype=np.intp)
        acc = np.zeros((replicas, rows.size, 3), dtype=np.float32)
        pe = np.zeros((replicas, rows.size), dtype=np.float32)
        machine = self.machine

        for start in range(0, rows.size, row_block):
            block = rows[start : start + row_block]
            # Per replica: (block rows) x (all j) pairs; replicas stack
            # along the row axis in replica order.
            xi = np.concatenate(
                [np.repeat(positions32[r, block], n, axis=0) for r in range(replicas)]
            )
            xj = np.concatenate(
                [np.tile(positions32[r], (block.size, 1)) for r in range(replicas)]
            )
            j_index = np.tile(np.arange(n), block.size)
            i_index = np.repeat(block, n)
            self_rows = np.tile(i_index == j_index, replicas)
            xj[self_rows, 0] += 1.0e3
            env: dict[str, np.ndarray] = {
                "xi": machine.load_vec3(xi),
                "xj": machine.load_vec3(xj),
            }
            batch = env["xi"].shape[0]
            env.update(self._block_env(batch, constants))
            self_flag = env["self_flag"]
            self_flag.fill(0.0)
            self_flag[self_rows] = 1.0

            machine.run_program(self.program, env, replicas=replicas)

            fvec = env["acc_out"].reshape(replicas, block.size, n, machine.width)
            pe_pair = env["pe_out"].reshape(replicas, block.size, n, machine.width)
            acc[:, start : start + block.size] = fvec[:, :, :, :3].sum(
                axis=2, dtype=np.float32
            )
            pe[:, start : start + block.size] = pe_pair[:, :, :, 0].sum(
                axis=2, dtype=np.float32
            )
        return acc, pe
