"""The Cell Broadband Engine device model (paper section 5.1).

Orchestration mirrors the paper's Asynchronous Thread Runtime usage: the
PPE integrates and bookkeeps; the acceleration computation (step 2) is
offloaded to 1-8 SPEs, each owning a block of atom rows and scanning all
N positions from its local store; positions stream in and accelerations
stream out over DMA each step; threads are either respawned per step or
launched once and mailbox-signalled.

Two functional modes:

* ``fast`` (default) — physics via the float32 NumPy kernel (identical
  arithmetic to the VM kernels), timing from statically scheduled VM
  instruction streams scaled by measured pair counts.  This is the mode
  benchmarks use.
* ``vm`` — physics actually executed instruction-by-instruction on the
  batched VM through the selected Figure-5 kernel variant.  Slower;
  used by the validation tests to certify that every kernel level
  computes the reference forces.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.arch import calibration as cal
from repro.arch.device import Device
from repro.arch.profilecounts import KernelMetrics
from repro.cell.dma import MDTrafficPlan, make_dma_engine
from repro.cell.kernels import OPT_LEVELS, build_spe_kernel, kernel_constants
from repro.cell.partition import RowPartition
from repro.cell.ppe import PPE
from repro.cell.scheduler import LaunchStrategy, SpeThreadScheduler
from repro.cell.spe import SPE, SPE_COST_TABLE, SpePairSweep
from repro.md.box import PeriodicBox
from repro.md.forces import ForceResult
from repro.md.lattice import cubic_lattice
from repro.md.lj import LennardJones
from repro.md.simulation import MDConfig
from repro.obs.observe import Observation
from repro.vm.schedule import issue_stats

__all__ = ["CellDevice", "PPEOnlyDevice"]

#: System size used to measure geometry-dependent branch probabilities.
_CALIBRATION_ATOMS = 128


@functools.lru_cache(maxsize=32)
def _measure_reflect_probability(density: float, rcut: float) -> float:
    """Measured P(taken) of the reflection search's if, via the VM.

    The probability that a candidate image beats the incumbent depends
    only on the reduced geometry (density/cutoff fix the box shape in
    units of L), so one small-system VM run calibrates every system
    size.  Uses the *original* kernel, whose search carries the branch.
    """
    config = MDConfig(n_atoms=_CALIBRATION_ATOMS, density=density, rcut=min(
        rcut, 0.45 * PeriodicBox.from_density(_CALIBRATION_ATOMS, density).length
    ))
    box = config.make_box()
    potential = config.make_potential()
    positions = cubic_lattice(config.n_atoms, box)
    program = build_spe_kernel("original", box.length)
    sweep = SpePairSweep(program)
    sweep.run(
        positions,
        rows=np.arange(min(16, config.n_atoms)),
        constants=kernel_constants(potential),
    )
    return sweep.machine.measured_probability("reflect_take")


class CellDevice(Device):
    """1-8 SPEs + PPE host, at a chosen Figure-5 optimization level."""

    precision = "float32"
    tune_family = "cell"

    def __init__(
        self,
        n_spes: int = cal.CELL_N_SPES,
        opt_level: str = "simd_acceleration",
        strategy: LaunchStrategy = LaunchStrategy.LAUNCH_ONCE,
        mode: str = "fast",
        force_path: str = "all-pairs",
        partition: RowPartition | str | None = None,
    ) -> None:
        if not 1 <= n_spes <= cal.CELL_N_SPES:
            raise ValueError(
                f"n_spes must be in [1, {cal.CELL_N_SPES}], got {n_spes}"
            )
        if opt_level not in OPT_LEVELS:
            raise ValueError(f"unknown optimization level {opt_level!r}")
        if mode not in ("fast", "vm"):
            raise ValueError(f"mode must be 'fast' or 'vm', got {mode!r}")
        if isinstance(partition, str):
            partition = RowPartition(partition)
        #: explicit constructor choice; None defers to the tuned config
        #: (resolved per run in :meth:`prepare`), falling back to BLOCK
        self._explicit_partition = partition
        self.partition = partition or RowPartition.BLOCK
        self.n_spes = n_spes
        self.opt_level = opt_level
        self.strategy = strategy
        self.mode = mode
        self.force_path = force_path
        self.name = f"cell-{n_spes}spe-{opt_level}"
        self.ppe = PPE()
        self.spes = [SPE(index=i) for i in range(n_spes)]
        self.scheduler = SpeThreadScheduler(n_spes=n_spes, strategy=strategy)
        self.dma = make_dma_engine()
        self.active_spes = n_spes
        self._program_cache: dict[float, object] = {}
        self._sweep_cache: dict[float, SpePairSweep] = {}
        #: VM work accumulated since the last observed step: segment
        #: executions and per-branch (taken_mass, samples) deltas
        self._vm_window: dict[str, object] = {"segments": 0, "branches": {}}

    # -- functional side ---------------------------------------------------

    def _sweep(self, box_length: float) -> SpePairSweep:
        """The vm-mode sweep for this box, cached across runs.

        The machine's :class:`~repro.vm.machine.BranchStat` accumulators
        survive with the cache, so every consumer must difference
        ``branch_snapshot`` windows instead of reading lifetime totals —
        reusing the machine must never let one run's branch statistics
        leak into the next run's physics or counters.
        """
        key = round(box_length, 12)
        sweep = self._sweep_cache.get(key)
        if sweep is None:
            if len(self._sweep_cache) > 4:
                self._sweep_cache.clear()
            sweep = SpePairSweep(self._program(box_length))
            self._sweep_cache[key] = sweep
        return sweep

    def force_backend(self, sim_box: PeriodicBox, potential: LennardJones):
        if self.mode == "fast":
            return self.functional_backend(sim_box, potential)

        sweep = self._sweep(sim_box.length)
        constants = kernel_constants(potential)
        # Disarm any fault session left by a previous run on the cached
        # machine before optionally arming this run's session.
        sweep.machine.install_fault_session(None)
        if self.fault_session is not None:
            # vm mode injects bit-flips at the instruction level, into
            # real local-store output registers, instead of post hoc.
            self.fault_session.adopt_machine(sweep.machine)

        def vm_backend(positions: np.ndarray) -> ForceResult:
            n = positions.shape[0]
            machine = sweep.machine
            before = {
                key: stat.snapshot()
                for key, stat in machine.branch_stats.items()
            }
            total0, count0 = before.get("interacting_fraction", (0.0, 0))
            acc, pe_rows = sweep.run(
                positions, rows=np.arange(n), constants=constants
            )
            total1, count1 = machine.branch_snapshot("interacting_fraction")
            new_samples = count1 - count0
            fraction = (total1 - total0) / new_samples if new_samples else 0.0
            interacting = int(round(fraction * n * (n - 1) / 2.0))
            if self.observation is not None:
                self._record_vm_window(before)
            return ForceResult(
                accelerations=acc.astype(np.float64),
                potential_energy=0.5 * float(pe_rows.sum(dtype=np.float64)),
                interacting_pairs=interacting,
                pairs_examined=n * (n - 1) // 2,
            )

        return vm_backend

    def _record_vm_window(
        self, before: dict[str, tuple[float, int]]
    ) -> None:
        """Fold one VM force evaluation's branch deltas into the window."""
        window = self._vm_window
        window["segments"] = int(window["segments"]) + 1
        branches: dict[str, tuple[float, int]] = window["branches"]
        machine = self._sweep(self._box_length).machine
        for key, stat in machine.branch_stats.items():
            total0, count0 = before.get(key, (0.0, 0))
            total1, count1 = stat.snapshot()
            prev_t, prev_c = branches.get(key, (0.0, 0))
            branches[key] = (
                prev_t + (total1 - total0), prev_c + (count1 - count0)
            )

    # -- timing side ---------------------------------------------------------

    def prepare(self, config: MDConfig) -> None:
        self._box_length = config.make_box().length
        self.active_spes = self.n_spes  # crashed SPEs stay dead per run
        self._vm_window = {"segments": 0, "branches": {}}
        if self._explicit_partition is not None:
            self.partition = self._explicit_partition
        else:
            from repro.tune.context import tuned_value

            tuned = tuned_value("cell.partition", self.tune_family)
            self.partition = (
                RowPartition(tuned) if tuned is not None else RowPartition.BLOCK
            )

    def _traffic(self, n_atoms: int) -> MDTrafficPlan:
        """This run's per-SPE DMA plan under the active row partition."""
        return MDTrafficPlan(
            n_atoms=n_atoms,
            n_spes=self.active_spes,
            scatter_out=self.partition is RowPartition.CYCLIC,
        )

    def workers(self) -> int:
        return self.active_spes

    def branch_probabilities(self, config: MDConfig) -> dict[str, float]:
        return {
            "reflect_take": _measure_reflect_probability(
                config.density, config.rcut
            )
        }

    def _program(self, box_length: float):
        key = round(box_length, 12)
        if key not in self._program_cache:
            self._program_cache[key] = build_spe_kernel(self.opt_level, box_length)
        return self._program_cache[key]

    def step_seconds(
        self, metrics: KernelMetrics, step_index: int
    ) -> dict[str, float]:
        program = self._program(self._box_length)
        traffic = self._traffic(metrics.n_atoms)
        layout = traffic.layout(self.spes[0].local_store)
        kernel_seconds = self.spes[0].kernel_seconds(program, metrics.as_dict())
        session = self.fault_session
        if session is not None:
            self._step_faults(session, traffic, layout, kernel_seconds, step_index)
        return {
            "spe_kernel": kernel_seconds,
            "dma": traffic.exposed_dma_seconds(self.dma, layout, kernel_seconds),
            "thread_launch": self.scheduler.launch_seconds(step_index),
            "mailbox": self.scheduler.signal_seconds(
                step_index, n_spes=self.active_spes
            ),
            "ppe_host": self.ppe.integration_seconds(metrics.n_atoms),
        }

    def observe_step(
        self,
        obs: Observation,
        metrics: KernelMetrics,
        parts: dict[str, float],
        step_index: int,
    ) -> None:
        active = self.active_spes
        traffic = self._traffic(metrics.n_atoms)
        layout = traffic.layout(self.spes[0].local_store)
        obs.charge_many({
            "cell.dma.bytes_in": active * traffic.bytes_in,
            "cell.dma.bytes_out": active * traffic.bytes_out,
            "cell.dma.bytes": active * (traffic.bytes_in + traffic.bytes_out),
            "cell.dma.transactions": active * traffic.transactions_per_spe(layout),
        })
        if (
            self.strategy is LaunchStrategy.RESPAWN_PER_STEP
            or step_index == 0
        ):
            obs.charge("cell.spe.launches", self.scheduler.n_spes)
        if self.strategy is LaunchStrategy.LAUNCH_ONCE and step_index > 0:
            obs.charge("cell.mailbox.words", 2 * active)
            obs.charge("cell.mailbox.round_trips", active)
        obs.charge("cell.spe.active", active)
        obs.charge("cell.spe.slots", self.n_spes)
        program = self._program(self._box_length)
        stats = issue_stats(program, SPE_COST_TABLE, metrics.as_dict())
        obs.charge_many({
            "cell.spe.instructions": stats.instructions * active,
            "cell.spe.cycles": stats.cycles * active,
            "cell.spe.dual_issue_cycles": stats.dual_issue_cycles * active,
            "cell.spe.branch_evals": stats.branch_evals * active,
            "cell.spe.branch_taken": stats.branch_taken * active,
            "cell.spe.branch_flush_cycles": stats.branch_flush_cycles * active,
        })
        if self.mode == "vm":
            window = self._vm_window
            segments = int(window["segments"])
            if segments:
                obs.charge("vm.segments", segments)
            for key, (taken_mass, samples) in window["branches"].items():
                if samples:
                    obs.charge(f"vm.branch.{key}.samples", samples)
                    obs.charge(f"vm.branch.{key}.taken_mass", taken_mass)
            self._vm_window = {"segments": 0, "branches": {}}

        # Timeline: launch on the PPE, then all SPEs gather and compute
        # concurrently, then the PPE drains mailboxes and integrates.
        launch = parts.get("thread_launch", 0.0)
        dma = parts.get("dma", 0.0)
        kernel = parts.get("spe_kernel", 0.0)
        mailbox = parts.get("mailbox", 0.0)
        host = parts.get("ppe_host", 0.0)
        recovery = parts.get("fault_recovery", 0.0)
        if launch > 0.0:
            obs.span_at("thread_launch", "ppe", 0.0, launch,
                        args={"step": step_index})
        for spe in range(active):
            lane = f"spe{spe}"
            if dma > 0.0:
                obs.span_at("dma", lane, launch, dma, args={"step": step_index})
            if kernel > 0.0:
                obs.span_at("spe_exec", lane, launch + dma, kernel,
                            args={"step": step_index})
        after = launch + dma + kernel
        if mailbox > 0.0:
            obs.span_at("mailbox_wait", "ppe", after, mailbox,
                        args={"step": step_index})
        if host > 0.0:
            obs.span_at("ppe_host", "ppe", after + mailbox, host,
                        args={"step": step_index})
        if recovery > 0.0:
            obs.span_at("fault_recovery", "ppe", after + mailbox + host,
                        recovery, args={"step": step_index})

    def _step_faults(
        self, session, traffic, layout, kernel_seconds: float, step_index: int
    ) -> None:
        """Draw this step's Cell fault sites and charge their recovery.

        All recovery seconds accumulate on the session and surface in
        the step's ``fault_recovery`` component; the functional physics
        is untouched because retries re-read pristine main-memory data.
        """
        retry_cost = traffic.retry_transfer_seconds(self.dma, layout)
        session.charge(session.faulty_transfer(
            "cell.dma.fail", retry_cost, detection="dma-completion-status"
        ))
        session.charge(session.faulty_transfer(
            "cell.dma.corrupt", retry_cost, detection="payload-checksum"
        ))
        if self.strategy is LaunchStrategy.LAUNCH_ONCE and step_index > 0:
            mailbox = self.scheduler.mailbox
            session.charge(session.faulty_transfer(
                "cell.mailbox.drop",
                mailbox.resend_seconds,
                detection="ack-timeout",
                on_fault=lambda decision: mailbox.drop(),
            ))
        session.charge(session.transient(
            "cell.spe.hang",
            lambda decision: kernel_seconds + 2 * self.scheduler.mailbox.transfer_s,
            detection="completion-timeout",
            action="SPE re-signalled and its block recomputed",
        ))
        crash = session.fire("cell.spe.crash")
        if crash is not None:
            self._crash_spe(session, crash, kernel_seconds)

    def _crash_spe(self, session, decision, kernel_seconds: float) -> None:
        """Kill one SPE and re-partition its rows onto the survivors."""
        from repro.faults.session import UnrecoveredFaultError

        victim = int(decision.rng.integers(self.active_spes))
        session.log.append(
            session.step, "cell.spe.crash", "injected",
            {"occurrence": decision.occurrence, "spe": victim},
        )
        session.log.append(
            session.step, "cell.spe.crash", "detected",
            {"detection": "heartbeat-timeout"},
        )
        survivors = self.active_spes - 1
        if survivors < 1:
            session.log.append(
                session.step, "cell.spe.crash", "aborted",
                {"faults": 1, "reason": "no surviving SPEs"},
            )
            raise UnrecoveredFaultError(
                f"last SPE crashed at step {session.step}; "
                "no survivors to re-partition onto",
                session.log,
            )
        # The dead SPE's block is redone by the survivors (one extra
        # kernel quantum) after the PPE redistributes row ownership.
        extra = self.scheduler.repartition_seconds(survivors) + kernel_seconds
        self.active_spes = survivors
        session.log.append(
            session.step, "cell.spe.crash", "recovered",
            {"faults": 1,
             "action": f"rows re-partitioned onto {survivors} surviving SPEs"},
            sim_seconds=extra,
        )
        session.charge(extra)


class PPEOnlyDevice(Device):
    """Table 1's "Cell, PPE only" row: the original kernel on the PPE."""

    precision = "float32"
    name = "cell-ppe-only"
    tune_family = "cell"

    def __init__(self, force_path: str = "all-pairs") -> None:
        self.ppe = PPE()
        self.force_path = force_path
        self._program_cache: dict[float, object] = {}

    def prepare(self, config: MDConfig) -> None:
        self._box_length = config.make_box().length

    def force_backend(self, sim_box: PeriodicBox, potential: LennardJones):
        return self.functional_backend(sim_box, potential)

    def branch_probabilities(self, config: MDConfig) -> dict[str, float]:
        return {
            "reflect_take": _measure_reflect_probability(
                config.density, config.rcut
            )
        }

    def _program(self, box_length: float):
        key = round(box_length, 12)
        if key not in self._program_cache:
            self._program_cache[key] = build_spe_kernel("original", box_length)
        return self._program_cache[key]

    def step_seconds(
        self, metrics: KernelMetrics, step_index: int
    ) -> dict[str, float]:
        program = self._program(self._box_length)
        return {
            "ppe_kernel": self.ppe.kernel_seconds(program, metrics.as_dict()),
            "ppe_host": self.ppe.integration_seconds(metrics.n_atoms),
        }

    def observe_step(
        self,
        obs: Observation,
        metrics: KernelMetrics,
        parts: dict[str, float],
        step_index: int,
    ) -> None:
        # Everything happens on the one PPE: lay the parts end to end on
        # a single "ppe" lane.
        offset = 0.0
        for name, seconds in parts.items():
            if seconds > 0.0:
                obs.span_at(name, "ppe", offset, seconds,
                            args={"step": step_index})
                offset += seconds
