"""The Power Processing Element model.

The PPE is a dual-issue in-order Power core.  For the MD kernel it has
two jobs in the paper's experiments:

* the *host* role — integration, energy bookkeeping, thread
  orchestration (cheap, O(N) per step);
* the *PPE-only* baseline of Table 1 — running the whole original
  scalar kernel itself, where it is 26x slower than the 8-SPE version.

The PPE cost table doubles the SPE arithmetic latencies (deep pipeline,
no forwarding miracles in the 2006 toolchain) and issues one instruction
per cycle; a further CPI factor from the calibration module absorbs
everything the table does not model (load-hit-store stalls, microcoded
ops).  The paper itself treats the PPE as a single slow data point, so a
first-order model is appropriate.
"""

from __future__ import annotations

import dataclasses

from repro.arch import calibration as cal
from repro.arch.clock import Clock
from repro.vm.isa import EVEN, ODD, CostTable, OpCost
from repro.vm.program import Program
from repro.vm.schedule import estimate_cycles

__all__ = ["PPE_COST_TABLE", "PPE"]

PPE_COST_TABLE = CostTable(
    name="ppe",
    issue_width=1,
    costs={
        "fa": OpCost(10, EVEN),
        "fs": OpCost(10, EVEN),
        "fm": OpCost(10, EVEN),
        "fma": OpCost(10, EVEN),
        "fms": OpCost(10, EVEN),
        "fnms": OpCost(10, EVEN),
        "frest": OpCost(10, EVEN),
        "frsqest": OpCost(10, EVEN),
        "fi": OpCost(10, EVEN),
        "fabs": OpCost(4, EVEN),
        "fcgt": OpCost(4, EVEN),
        "fclt": OpCost(4, EVEN),
        "fceq": OpCost(4, EVEN),
        "and_": OpCost(2, EVEN),
        "or_": OpCost(2, EVEN),
        "il": OpCost(2, EVEN),
        "ilv": OpCost(2, EVEN),
        "cpsgn": OpCost(4, EVEN),
        "selb": OpCost(2, ODD),
        "mov": OpCost(2, ODD),
        "splat": OpCost(4, ODD),
        "shufb": OpCost(4, ODD),
        "rotqbyi": OpCost(4, ODD),
        "lqd": OpCost(4, ODD),
        "stqd": OpCost(4, ODD),
    },
)

#: Integration + bookkeeping cost on the PPE host side, cycles per atom
#: per step (steps 1, 3, 4, 5 of the kernel are O(N) and stay on the
#: PPE in every Cell configuration).
PPE_INTEGRATION_CYCLES_PER_ATOM = 120.0


@dataclasses.dataclass
class PPE:
    """The host core of the Cell processor."""

    clock: Clock = dataclasses.field(
        default_factory=lambda: Clock(cal.PPE_CLOCK_HZ, "ppe")
    )
    cpi_factor: float = cal.PPE_CPI_FACTOR

    def kernel_seconds(self, program: Program, metrics: dict[str, float]) -> float:
        """Seconds for the PPE itself to run a kernel (PPE-only mode)."""
        report = estimate_cycles(program, PPE_COST_TABLE, metrics)
        return self.clock.seconds(report.total_cycles * self.cpi_factor)

    def integration_seconds(self, n_atoms: int) -> float:
        """Host-side O(N) work per step."""
        if n_atoms < 0:
            raise ValueError("n_atoms must be non-negative")
        return self.clock.seconds(PPE_INTEGRATION_CYCLES_PER_ATOM * n_atoms)
