"""SPE thread-launch strategies — the subject of the paper's Figure 6.

Two strategies are modelled:

* ``RESPAWN_PER_STEP`` — the naive port: SPE threads are created at
  every time step and exit when their block of accelerations is done.
  Launch cost is paid ``n_spes`` times per step and grows "by a factor
  of eight" with eight SPEs, capping the parallel speedup near 1.5x.
* ``LAUNCH_ONCE`` — threads are created on the first time step only and
  then signalled through their mailboxes when new data is ready, so
  "the thread launch overhead is amortized across all time steps".
"""

from __future__ import annotations

import dataclasses
import enum

from repro.arch import calibration as cal
from repro.cell.mailbox import Mailbox

__all__ = ["LaunchStrategy", "SpeThreadScheduler"]


class LaunchStrategy(enum.Enum):
    RESPAWN_PER_STEP = "respawn_per_step"
    LAUNCH_ONCE = "launch_once"


@dataclasses.dataclass
class SpeThreadScheduler:
    """Accounts for thread-launch and signalling time on the PPE.

    Launches are serial on the PPE (one ``spe_create_thread`` call per
    SPE), so total launch time scales linearly with the SPE count —
    exactly the effect Figure 6 isolates.
    """

    n_spes: int
    strategy: LaunchStrategy = LaunchStrategy.LAUNCH_ONCE
    launch_per_thread_s: float = cal.SPE_THREAD_LAUNCH_S
    mailbox: Mailbox = dataclasses.field(default_factory=Mailbox)

    def __post_init__(self) -> None:
        if self.n_spes < 1:
            raise ValueError(f"n_spes must be >= 1, got {self.n_spes}")
        if self.launch_per_thread_s < 0:
            raise ValueError("launch_per_thread_s must be non-negative")

    def launch_seconds(self, step_index: int) -> float:
        """Thread-creation time charged at this step."""
        if step_index < 0:
            raise ValueError("step_index must be non-negative")
        if self.strategy is LaunchStrategy.RESPAWN_PER_STEP:
            return self.n_spes * self.launch_per_thread_s
        if step_index == 0:
            return self.n_spes * self.launch_per_thread_s
        return 0.0

    def signal_seconds(self, step_index: int, n_spes: int | None = None) -> float:
        """Mailbox signalling time charged at this step.

        Launch-once signals every SPE twice per step after the first
        (go + completion); respawn needs no mailboxes (thread exit is
        the completion signal).  ``n_spes`` overrides the signalled
        count when SPEs have been lost to faults mid-run.
        """
        if step_index < 0:
            raise ValueError("step_index must be non-negative")
        if self.strategy is LaunchStrategy.RESPAWN_PER_STEP:
            return 0.0
        if step_index == 0:
            return 0.0
        count = self.n_spes if n_spes is None else n_spes
        return sum(
            self.mailbox.send_seconds() + self.mailbox.receive_seconds()
            for _ in range(count)
        )

    def repartition_seconds(self, survivors: int) -> float:
        """Cost of re-partitioning the atom rows after an SPE crash.

        The PPE recomputes block bounds (folded into one launch quantum
        of PPE work) and re-signals every surviving SPE with its new
        block — the crashed thread's context is abandoned, not
        relaunched, so launch cost is paid once regardless of strategy.
        """
        if survivors < 1:
            raise ValueError(f"survivors must be >= 1, got {survivors}")
        signals = sum(
            self.mailbox.send_seconds() + self.mailbox.receive_seconds()
            for _ in range(survivors)
        )
        return self.launch_per_thread_s + signals
