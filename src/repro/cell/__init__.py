"""The Cell Broadband Engine model: SPEs, PPE, DMA, mailboxes, kernels."""

from repro.cell.device import CellDevice, PPEOnlyDevice
from repro.cell.dma import MDTrafficPlan, make_dma_engine
from repro.cell.kernels import (
    OPT_LEVELS,
    OptimizationFlags,
    build_spe_kernel,
    kernel_constants,
)
from repro.cell.mailbox import Mailbox
from repro.cell.partition import (
    PartitionTiming,
    RowPartition,
    partition_rows,
    partitioned_kernel_seconds,
)
from repro.cell.ppe import PPE, PPE_COST_TABLE
from repro.cell.scheduler import LaunchStrategy, SpeThreadScheduler
from repro.cell.spe import SPE, SPE_COST_TABLE, SpePairSweep

__all__ = [
    "CellDevice",
    "LaunchStrategy",
    "MDTrafficPlan",
    "Mailbox",
    "OPT_LEVELS",
    "OptimizationFlags",
    "PPE",
    "PartitionTiming",
    "RowPartition",
    "partition_rows",
    "partitioned_kernel_seconds",
    "PPEOnlyDevice",
    "PPE_COST_TABLE",
    "SPE",
    "SPE_COST_TABLE",
    "SpePairSweep",
    "SpeThreadScheduler",
    "build_spe_kernel",
    "kernel_constants",
    "make_dma_engine",
]
