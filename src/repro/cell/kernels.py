"""The six SPE kernel variants of the paper's Figure 5.

Section 5.1 describes an optimization ladder for the acceleration
kernel, applied cumulatively:

1. ``original``           — the scalar port of the CPU code: component-
   wise direction/length math, a branchy per-axis minimum-image search.
2. ``copysign``           — "replace an if test in that section with
   extra math": the search's compare-and-keep becomes branchless selects.
3. ``simd_reflection``    — "all three axes could be searched
   simultaneously using the SIMD intrinsics": the per-axis scalar search
   loops collapse into one 3-iteration SIMD search.
4. ``simd_direction``     — the 3-component direction-vector subtraction
   becomes one SIMD subtract.
5. ``simd_length``        — the length calculation (dot product + rsqrt)
   becomes SIMD + horizontal sum.
6. ``simd_acceleration``  — converting the scalar force into the 3D
   acceleration vector becomes SIMD (inside the rarely-taken interacting
   branch, hence the paper's mere 3% gain).

Each variant is a complete, runnable VM program: the functional tests
execute all six over real configurations and assert they produce the
reference forces; the cycle model schedules the exact instruction
streams to produce Figure 5's runtimes.

Register convention (driver contract, see
:class:`repro.cell.spe.SpePairSweep`): inputs ``xi``/``xj`` hold the two
positions as (x, y, z, 0) vectors; ``self_flag`` is 1.0 on self-pairs;
constants are preloaded registers; outputs are ``acc_out`` (force
contribution as (fx, fy, fz, junk)) and ``pe_out`` (PE contribution in
lane 0).
"""

from __future__ import annotations

import dataclasses

from repro.md.lj import LennardJones
from repro.vm.builder import Asm
from repro.vm.program import Node, Program, Segment

__all__ = [
    "OPT_LEVELS",
    "OptimizationFlags",
    "build_spe_kernel",
    "build_spe_timestep_kernel",
    "kernel_constants",
    "timestep_constants",
]

#: The Figure-5 ladder, in paper order.
OPT_LEVELS = (
    "original",
    "copysign",
    "simd_reflection",
    "simd_direction",
    "simd_length",
    "simd_acceleration",
)


@dataclasses.dataclass(frozen=True)
class OptimizationFlags:
    """Which SIMDizations are applied (cumulative along the ladder)."""

    branchless_select: bool = False
    simd_reflection: bool = False
    simd_direction: bool = False
    simd_length: bool = False
    simd_acceleration: bool = False

    @classmethod
    def for_level(cls, level: str) -> "OptimizationFlags":
        if level not in OPT_LEVELS:
            raise ValueError(f"unknown optimization level {level!r}")
        index = OPT_LEVELS.index(level)
        return cls(
            branchless_select=index >= 1,
            simd_reflection=index >= 2,
            simd_direction=index >= 3,
            simd_length=index >= 4,
            simd_acceleration=index >= 5,
        )


def kernel_constants(potential: LennardJones) -> dict[str, float]:
    """The constant registers every kernel variant expects preloaded."""
    return {
        "rc": potential.rcut,
        "sigma2": potential.sigma * potential.sigma,
        "c24eps": 24.0 * potential.epsilon,
        "c4eps": 4.0 * potential.epsilon,
        "shiftE": potential.shift_energy,
        "half": 0.5,
        "three": 3.0,
        "two": 2.0,
        "one": 1.0,
    }


_CONSTANT_REGS = (
    "rc",
    "sigma2",
    "c24eps",
    "c4eps",
    "shiftE",
    "half",
    "three",
    "two",
    "one",
)

_AXES = ("x", "y", "z")


def _scalar_direction(a: Asm) -> list[Node]:
    """Component-wise direction: extract lanes, subtract per component.

    The scalar path pays the cost real scalar SPE code paid: each
    component is extracted into the preferred slot and the result is
    round-tripped through the local store (the 4.x-era SPE compilers
    materialized element accesses as memory traffic — section 3.1.1
    notes they were "unable to perform significant code optimization").
    """
    nodes: list[Node] = []
    for lane, axis in enumerate(_AXES):
        nodes.append(a.splat(f"xi{axis}", "xi", lane))
        nodes.append(a.splat(f"xj{axis}", "xj", lane))
        nodes.append(a.fs(f"d{axis}", f"xi{axis}", f"xj{axis}"))
        nodes.append(a.stqd(f"dspill{axis}", f"d{axis}"))
    return nodes


def _simd_direction(a: Asm) -> list[Node]:
    """One SIMD subtract yields all three components at once."""
    return [a.fs("d", "xi", "xj")]


def _pack3(a: Asm, dest: str, x: str, y: str, z: str, tmp: str) -> list[Node]:
    """Pack three splatted scalars into one (x, y, z, z) vector."""
    return [
        a.shufb(tmp, x, y, (0, 4, 0, 4)),
        a.shufb(dest, tmp, z, (0, 1, 4, 4)),
    ]


def _scalar_reflection(a: Asm, branchless: bool, box_length: float) -> list[Node]:
    """Per-axis minimum-image search: 3 axes x 3 candidate offsets.

    The branchy form keeps the better candidate with an if (penalized —
    the SPE has no branch prediction); the copysign form does it with
    compare + two selects, the paper's "extra math".
    """
    nodes: list[Node] = []
    offsets = (-box_length, 0.0, box_length)
    for axis in _AXES:
        d = f"d{axis}"
        best = f"b{axis}"
        bestabs = f"ba{axis}"
        nodes.append(a.mov(best, d))
        nodes.append(a.fabs(bestabs, d))
        keep = [
            a.mov(best, f"cand{axis}"),
            a.mov(bestabs, f"candabs{axis}"),
            # the kept candidate is written back to its stack slot
            a.stqd(f"bspill{axis}", best),
        ]
        body: list[Node] = [
            a.il(f"off{axis}", d, offsets),
            a.fa(f"cand{axis}", d, f"off{axis}"),
            a.fabs(f"candabs{axis}", f"cand{axis}"),
            a.fclt(f"m{axis}", f"candabs{axis}", bestabs),
        ]
        if branchless:
            body.append(a.selb(best, best, f"cand{axis}", f"m{axis}"))
            body.append(a.selb(bestabs, bestabs, f"candabs{axis}", f"m{axis}"))
        else:
            body.append(a.if_(f"m{axis}", keep, prob_key="reflect_take"))
        # overhead 4: counter update, stack-slot address, compare, loop branch
        nodes.append(a.loop(3, body, overhead=4))
    return nodes


def _simd_reflection(a: Asm, box_length: float, d_reg: str) -> list[Node]:
    """All three axes searched simultaneously: one 3-iteration SIMD loop."""
    vec = lambda v: (v, v, v, 0.0)  # noqa: E731 - tiny local helper
    offsets = (vec(-box_length), vec(0.0), vec(box_length))
    body: list[Node] = [
        a.ilv("offv", d_reg, offsets),
        a.fa("candv", d_reg, "offv"),
        a.fabs("candabsv", "candv"),
        a.fclt("mv", "candabsv", "bestabsv"),
        a.selb("bestv", "bestv", "candv", "mv"),
        a.selb("bestabsv", "bestabsv", "candabsv", "mv"),
    ]
    return [
        a.mov("bestv", d_reg),
        a.fabs("bestabsv", d_reg),
        a.loop(3, body, overhead=0),  # hand-unrolled intrinsics: no loop tax
    ]


def _scalar_length(a: Asm) -> list[Node]:
    """Component-wise dot product + rsqrt refinement; r and 1/r out.

    Like real scalar SPE code, each squared component takes a trip
    through the local store before the serial accumulation — this is
    the traffic the "SIMD length calculation" optimization removes.
    """
    nodes: list[Node] = []
    for axis in _AXES:
        nodes.append(a.fm(f"t2{axis}", f"b{axis}", f"b{axis}"))
        nodes.append(a.stqd(f"t2spill{axis}", f"t2{axis}"))
        nodes.append(a.lqd(f"t2l{axis}", f"t2spill{axis}"))
    nodes += [
        a.fa("r2s", "t2lx", "t2ly"),
        a.fa("r2s", "r2s", "t2lz"),
        *a.rsqrt_refined("rinv", "r2s", tmp="rtmp", half="half", three="three"),
        a.fm("rlen", "r2s", "rinv"),  # r = r2 * (1/sqrt(r2))
    ]
    return nodes


def _simd_length(a: Asm) -> list[Node]:
    """SIMD square + horizontal sum + rsqrt refinement."""
    return [
        a.fm("sqv", "bestv", "bestv"),
        *a.hsum3("r2s", "sqv", tmp="htmp"),
        *a.rsqrt_refined("rinv", "r2s", tmp="rtmp", half="half", three="three"),
        a.fm("rlen", "r2s", "rinv"),
    ]


def _extract_best(a: Asm) -> list[Node]:
    """Unpack the SIMD search result into scalar components."""
    return [
        a.splat("bx", "bestv", 0),
        a.splat("by", "bestv", 1),
        a.splat("bz", "bestv", 2),
    ]


def _force_common(a: Asm) -> list[Node]:
    """sr6/sr12 powers and the scalar force magnitude over r."""
    return [
        a.fm("inv_r2", "rinv", "rinv"),
        a.fm("s2", "sigma2", "inv_r2"),
        a.fm("s4", "s2", "s2"),
        a.fm("sr6", "s4", "s2"),
        a.fm("sr12", "sr6", "sr6"),
        a.fms("tt", "sr12", "two", "sr6"),  # 2*sr12 - sr6
        a.fm("fmag", "c24eps", "tt"),
        a.fm("fr", "fmag", "inv_r2"),
    ]


def _scalar_acceleration(a: Asm) -> list[Node]:
    """Component-wise force vector with read-modify-write accumulation.

    Scalar stores into the acceleration array are load-modify-store
    sequences on the 16-byte-granular local store; the SIMD version
    (one multiply, one aligned store) eliminates all of it.
    """
    nodes: list[Node] = []
    for axis in _AXES:
        nodes.append(a.fm(f"f{axis}", "fr", f"b{axis}"))
        nodes.append(a.lqd(f"aold{axis}", f"f{axis}"))
        nodes.append(a.shufb(f"amix{axis}", f"aold{axis}", f"f{axis}", (4, 1, 2, 3)))
        nodes.append(a.stqd(f"aspill{axis}", f"amix{axis}"))
    nodes += _pack3(a, "acc_out", "fx", "fy", "fz", tmp="ptmp")
    return nodes


def _simd_acceleration(a: Asm) -> list[Node]:
    """One SIMD multiply produces the whole acceleration contribution."""
    return [a.fm("acc_out", "fr", "bestv")]


def _pe_contribution(a: Asm) -> list[Node]:
    return [
        a.fs("pdiff", "sr12", "sr6"),
        a.fm("pen", "c4eps", "pdiff"),
        a.fs("pe_out", "pen", "shiftE"),
    ]


def timestep_constants(potential: LennardJones, dt: float) -> dict[str, float]:
    """Constant registers for the whole-timestep kernels: the pair-force
    constants plus the integration step size."""
    constants = kernel_constants(potential)
    constants["dt"] = float(dt)
    return constants


def _pair_body(
    flags: OptimizationFlags,
    box_length: float,
    branch_penalty: int,
) -> list[Node]:
    """The per-pair force body shared by the pair-only and whole-timestep
    kernels."""
    a = Asm()
    body: list[Node] = []

    # -- per-pair prologue: fetch the partner position from local store ----
    body.append(a.lqd("xj", "xj"))

    # -- direction vector -------------------------------------------------
    if flags.simd_direction:
        body += _simd_direction(a)
        d_reg = "d"
    else:
        body += _scalar_direction(a)
        d_reg = None

    # -- minimum image (unit-cell reflection) -----------------------------
    if flags.simd_reflection:
        if d_reg is None:
            # scalar direction feeding the SIMD search: pack components
            body += _pack3(a, "d", "dx", "dy", "dz", tmp="dtmp")
            d_reg = "d"
        body += _simd_reflection(a, box_length, d_reg)
        have_vector_best = True
    else:
        body += _scalar_reflection(a, flags.branchless_select, box_length)
        have_vector_best = False

    # -- length ------------------------------------------------------------
    if flags.simd_length:
        if not have_vector_best:  # pragma: no cover - ladder never hits this
            body += _pack3(a, "bestv", "bx", "by", "bz", tmp="dtmp")
        body += _simd_length(a)
    else:
        if have_vector_best:
            body += _extract_best(a)
        body += _scalar_length(a)

    # -- cutoff test (on r, as the pseudo code computes distances) ---------
    body += [
        a.fclt("mwithin", "rlen", "rc"),
        a.fs("notself", "one", "self_flag"),
        a.and_("mcut", "mwithin", "notself"),
    ]

    # -- interacting branch -------------------------------------------------
    interacting: list[Node] = list(_force_common(a))
    if flags.simd_acceleration:
        if not have_vector_best:  # pragma: no cover - ladder never hits this
            interacting += _pack3(a, "bestv", "bx", "by", "bz", tmp="dtmp")
        interacting += _simd_acceleration(a)
    else:
        if have_vector_best and flags.simd_length:
            # SIMD search + SIMD length left no scalar components around
            interacting += _extract_best(a)
        interacting += _scalar_acceleration(a)
    interacting += _pe_contribution(a)
    body.append(
        a.if_(
            "mcut",
            interacting,
            prob_key="interacting_fraction",
            penalty=branch_penalty,
        )
    )
    return body


def build_spe_kernel(
    level: str,
    box_length: float,
    branch_penalty: int = 18,
) -> Program:
    """Build the per-pair SPE kernel at one Figure-5 optimization level."""
    flags = OptimizationFlags.for_level(level)
    body = _pair_body(flags, box_length, branch_penalty)
    program = Program(
        name=f"spe_md_{level}",
        segments=(Segment("pair", "pairs", tuple(body)),),
        inputs=("xi", "xj", "self_flag") + _CONSTANT_REGS,
        outputs=("acc_out", "pe_out"),
    )
    program.validate()
    return program


def _integrate_body(a: Asm) -> list[Node]:
    """Leapfrog update of one row's own atom from its pair force.

    ``acc_out`` carries (fx, fy, fz, junk); the junk lane is zeroed so
    the velocity's padding lane stays clean, then one kick + one drift:
    ``vi' = vi + a*dt``, ``xi' = xi + vi'*dt``.
    """
    return [
        a.shufb("facc", "acc_out", "zero", (0, 1, 2, 4)),
        a.fma("vi_out", "facc", "dt", "vi"),
        a.fma("xi_out", "vi_out", "dt", "xi"),
    ]


def build_spe_timestep_kernel(
    level: str,
    box_length: float,
    branch_penalty: int = 18,
) -> Program:
    """The whole-timestep SPE program: force segment + integration segment.

    Each batch row is one independent pair system: the ``pair`` segment
    computes its interaction force exactly as :func:`build_spe_kernel`,
    and the ``integrate`` segment advances the row's own atom with it.
    The force flows to the integrator through the ``acc_out`` register —
    an SSA value under the ``fused`` backend (no ``env`` round trip), a
    declared-output handoff under ``interp``/``compiled`` — which is
    what makes this the cross-segment-fusion workload.
    """
    flags = OptimizationFlags.for_level(level)
    a = Asm()
    program = Program(
        name=f"spe_md_timestep_{level}",
        segments=(
            Segment("pair", "pairs", tuple(_pair_body(flags, box_length, branch_penalty))),
            Segment("integrate", "pairs", tuple(_integrate_body(a))),
        ),
        inputs=("xi", "xj", "self_flag", "vi", "dt", "zero") + _CONSTANT_REGS,
        outputs=("acc_out", "pe_out", "xi_out", "vi_out"),
    )
    program.validate()
    return program
