"""Row partitioning across SPEs and its load-balance consequences.

The paper's Cell port splits the acceleration computation so "each SPE
checks approximately one eighth of the total number (N^2) of atom
pairs" — a static *block* of rows per SPE.  Every SPE examines the same
number of pairs, but the pairs that fall *inside the cutoff* (which run
the expensive force branch) follow the local density around each row's
atom.  For a homogeneous liquid the imbalance is percent-level; for an
inhomogeneous system (a droplet, an interface) a block partition can
hand one SPE far more interacting pairs than another, and the step time
is the *maximum* over SPEs.

Two strategies are modelled:

* ``BLOCK`` — contiguous rows per SPE (the paper's layout, and the
  natural one for contiguous DMA of the output rows);
* ``CYCLIC`` — row i goes to SPE i mod n (the classic data-parallel
  remedy: spatial correlations average out).
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

from repro.cell.spe import SPE_COST_TABLE
from repro.tune.spec import TunableSpec, register_tunable
from repro.vm.program import Program
from repro.vm.schedule import estimate_cycles

__all__ = ["RowPartition", "partition_rows", "PartitionTiming", "partitioned_kernel_seconds"]


class RowPartition(enum.Enum):
    BLOCK = "block"
    CYCLIC = "cyclic"


# Purely a work-distribution choice: every pair is still examined by
# exactly one SPE, so the physics is unchanged; only load balance and
# the DMA pattern of the output rows move.
register_tunable(TunableSpec(
    name="cell.partition",
    backend="cell",
    kind="choice",
    default=RowPartition.BLOCK.value,
    candidates=(RowPartition.BLOCK.value, RowPartition.CYCLIC.value),
    description="SPE row-partition strategy (block vs cyclic)",
    effect="cyclic balances inhomogeneous systems but scatters the "
           "acceleration write-back into per-row DMA commands",
))


def partition_rows(
    n_atoms: int, n_spes: int, strategy: RowPartition
) -> list[np.ndarray]:
    """Row indices owned by each SPE under the given strategy."""
    if n_atoms < 1:
        raise ValueError("n_atoms must be >= 1")
    if n_spes < 1:
        raise ValueError("n_spes must be >= 1")
    rows = np.arange(n_atoms)
    if strategy is RowPartition.BLOCK:
        return [chunk for chunk in np.array_split(rows, n_spes)]
    return [rows[spe::n_spes] for spe in range(n_spes)]


@dataclasses.dataclass(frozen=True)
class PartitionTiming:
    """Per-SPE kernel seconds and the imbalance they imply."""

    per_spe_seconds: tuple[float, ...]

    @property
    def step_seconds(self) -> float:
        """The step completes when the slowest SPE does."""
        return max(self.per_spe_seconds)

    @property
    def mean_seconds(self) -> float:
        return sum(self.per_spe_seconds) / len(self.per_spe_seconds)

    @property
    def imbalance(self) -> float:
        """max/mean - 1: zero for a perfectly balanced step."""
        mean = self.mean_seconds
        if mean == 0.0:
            return 0.0
        return self.step_seconds / mean - 1.0


def partitioned_kernel_seconds(
    program: Program,
    row_interacting: np.ndarray,
    n_spes: int,
    strategy: RowPartition,
    clock_hz: float,
    reflect_take: float = 0.04,
) -> PartitionTiming:
    """Per-SPE kernel times from measured per-row interacting counts.

    Each SPE's pair-loop trip count is rows x (N - 1); its interacting
    fraction is the measured fraction *of its own rows*, which is what
    makes block partitions sensitive to spatial inhomogeneity.
    """
    row_interacting = np.asarray(row_interacting)
    n_atoms = row_interacting.size
    if n_atoms < 2:
        raise ValueError("need at least 2 atoms")
    seconds = []
    for rows in partition_rows(n_atoms, n_spes, strategy):
        pairs = rows.size * (n_atoms - 1)
        if pairs == 0:
            seconds.append(0.0)
            continue
        fraction = float(row_interacting[rows].sum()) / pairs
        metrics = {
            "pairs": float(pairs),
            "interacting_fraction": min(1.0, fraction),
            "reflect_take": reflect_take,
            "atoms": float(n_atoms),
        }
        report = estimate_cycles(program, SPE_COST_TABLE, metrics)
        seconds.append(report.total_cycles / clock_hz)
    return PartitionTiming(per_spe_seconds=tuple(seconds))
