"""SPE DMA traffic model for the MD offload.

Each time step every SPE pulls the full position array into its local
store (every atom needs every other atom's position) and pushes back the
acceleration rows it owns.  Positions and accelerations travel as
16-byte (x, y, z, pad) single-precision vectors, matching the SIMD
layout of section 5.1.
"""

from __future__ import annotations

import dataclasses

from repro.arch import calibration as cal
from repro.arch.interconnect import DMAEngine, TransferModel
from repro.arch.memory import LocalStore, LocalStoreOverflow

__all__ = ["make_dma_engine", "MDTrafficPlan"]


def make_dma_engine() -> DMAEngine:
    """The EIB-to-main-memory DMA path of one SPE."""
    return DMAEngine(
        link=TransferModel(
            latency_s=cal.EIB_DMA_LATENCY_S,
            bandwidth_bytes_per_s=cal.EIB_DMA_BANDWIDTH_BPS,
            name="eib",
        ),
        max_transfer_bytes=cal.EIB_DMA_MAX_TRANSFER_BYTES,
    )


@dataclasses.dataclass(frozen=True)
class ResidencyPlan:
    """How one SPE's working set maps onto its local store.

    ``resident`` means the whole position array fits (the paper's
    regime: 2048 atoms x 16 B = 32 KB); otherwise positions stream
    through double-buffered tiles of ``tile_atoms`` atoms each.
    """

    resident: bool
    tile_atoms: int
    transfers_per_step: int

    def __post_init__(self) -> None:
        if self.tile_atoms < 1:
            raise ValueError("tile_atoms must be >= 1")
        if self.transfers_per_step < 1:
            raise ValueError("transfers_per_step must be >= 1")


@dataclasses.dataclass(frozen=True)
class MDTrafficPlan:
    """Per-step, per-SPE DMA bytes for the acceleration offload."""

    n_atoms: int
    n_spes: int
    #: a cyclic row partition owns non-contiguous output rows, so the
    #: acceleration write-back degrades from chunked bursts to one DMA
    #: command per row (a DMA-list scatter); bytes moved are unchanged
    scatter_out: bool = False

    def __post_init__(self) -> None:
        if self.n_atoms < 1:
            raise ValueError("n_atoms must be >= 1")
        if self.n_spes < 1:
            raise ValueError("n_spes must be >= 1")

    @property
    def rows_per_spe(self) -> int:
        """Atoms owned by one SPE (ceiling; the last SPE may own fewer)."""
        return -(-self.n_atoms // self.n_spes)

    @property
    def bytes_in(self) -> int:
        """Positions pulled in: the whole array, every step."""
        return self.n_atoms * cal.VEC4_F32_BYTES

    @property
    def bytes_out(self) -> int:
        """Accelerations (with PE in the pad lane) pushed back."""
        return self.rows_per_spe * cal.VEC4_F32_BYTES

    def check_local_store(self, local_store: LocalStore) -> None:
        """Verify the whole working set can be resident; raise otherwise.

        Used by tests and by callers that insist on the paper's resident
        regime; :meth:`layout` is the general path that falls back to
        tiling instead of failing.
        """
        needed = self.bytes_in + self.bytes_out
        if not local_store.fits(needed):
            raise LocalStoreOverflow(
                f"{self.n_atoms} atoms need {needed} B resident in the local "
                f"store but only {local_store.free_bytes} B are free; "
                "tile the position array or reduce the system size"
            )

    def layout(self, local_store: LocalStore) -> ResidencyPlan:
        """Choose resident vs double-buffered-tiled streaming.

        A tiled layout keeps the SPE's own acceleration rows resident
        and streams the position array through two ping-pong tile
        buffers, so the usable tile is half of what remains after the
        output rows.
        """
        if local_store.fits(self.bytes_in + self.bytes_out):
            return ResidencyPlan(
                resident=True, tile_atoms=self.n_atoms, transfers_per_step=1
            )
        free_for_tiles = local_store.free_bytes - self.bytes_out
        tile_bytes = free_for_tiles // 2  # double buffering
        tile_atoms = tile_bytes // cal.VEC4_F32_BYTES
        if tile_atoms < 1:
            raise LocalStoreOverflow(
                f"local store too small even for tiled streaming: "
                f"{local_store.free_bytes} B free, "
                f"{self.bytes_out} B of output rows"
            )
        transfers = -(-self.n_atoms // tile_atoms)
        return ResidencyPlan(
            resident=False, tile_atoms=tile_atoms, transfers_per_step=transfers
        )

    def transactions_per_spe(self, plan: ResidencyPlan) -> int:
        """DMA commands one SPE issues per step.

        Each command moves at most the engine's maximum transfer size
        (16 KB on the EIB); resident layouts gather the whole position
        array in one burst of commands, tiled layouts issue a burst per
        tile.  This is the ``cell.dma.transactions`` hardware counter.
        """
        chunk = cal.EIB_DMA_MAX_TRANSFER_BYTES
        if self.scatter_out:
            out_cmds = self.rows_per_spe
        else:
            out_cmds = -(-self.bytes_out // chunk)
        if plan.resident:
            in_cmds = -(-self.bytes_in // chunk)
        else:
            tile_bytes = min(self.bytes_in, plan.tile_atoms * cal.VEC4_F32_BYTES)
            in_cmds = plan.transfers_per_step * -(-tile_bytes // chunk)
        return in_cmds + out_cmds

    def step_transfer_seconds(
        self, engine: DMAEngine, plan: ResidencyPlan | None = None
    ) -> float:
        """Raw DMA seconds per step for one SPE (in + out).

        Tiled layouts move the same bytes but pay command setup per
        tile; the overlap with compute is priced separately by
        :meth:`exposed_dma_seconds`.
        """
        if self.scatter_out:
            out_time = self.rows_per_spe * engine.transfer_time(
                cal.VEC4_F32_BYTES
            )
        else:
            out_time = engine.transfer_time(self.bytes_out)
        if plan is None or plan.resident:
            return engine.transfer_time(self.bytes_in) + out_time
        tile_bytes = min(self.bytes_in, plan.tile_atoms * cal.VEC4_F32_BYTES)
        in_time = plan.transfers_per_step * engine.transfer_time(tile_bytes)
        return in_time + out_time

    def retry_transfer_seconds(self, engine: DMAEngine, plan: ResidencyPlan) -> float:
        """Blocking re-transfer time for one failed/corrupt gather.

        A failed DMA is detected per transfer command, so the retry
        re-pays one gather unit: the whole position array when resident,
        one tile when streaming.  Used by fault recovery to price each
        retry attempt in simulated time.
        """
        if plan.resident:
            return engine.transfer_time(self.bytes_in)
        return engine.transfer_time(
            min(self.bytes_in, plan.tile_atoms * cal.VEC4_F32_BYTES)
        )

    def exposed_dma_seconds(
        self,
        engine: DMAEngine,
        plan: ResidencyPlan,
        compute_seconds: float,
    ) -> float:
        """DMA time the SPE actually waits for.

        Resident layouts block on the full gather at step start (the
        paper's code).  Tiled layouts double-buffer: transfers overlap
        the kernel, exposing only the first-tile fill plus whatever the
        compute cannot hide.
        """
        if compute_seconds < 0.0:
            raise ValueError("compute_seconds must be non-negative")
        raw = self.step_transfer_seconds(engine, plan)
        if plan.resident:
            return raw
        first_tile = engine.transfer_time(
            min(self.bytes_in, plan.tile_atoms * cal.VEC4_F32_BYTES)
        )
        hidden = min(raw - first_tile, compute_seconds)
        return first_tile + (raw - first_tile - hidden)
