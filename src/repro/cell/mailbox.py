"""PPE<->SPE mailbox signalling (section 5.1's launch-overhead fix).

"The communication between the PPE and SPEs is not limited to large
asynchronous DMA transfers; there are other channels ('mailboxes') that
can be used for blocking sends or receives of information on the order
of bytes."  The launch-once strategy signals each SPE through its
inbound mailbox every step instead of respawning threads.

The channel is modelled functionally as well as in time: a bounded
queue of 32-bit words (the SPU inbound mailbox is four entries deep),
with :class:`MailboxEmpty` / :class:`MailboxFull` raised on blocking
misuse, and a ``drops`` counter for words lost in flight under fault
injection (a dropped "go" word is detected by the PPE's ack timeout and
resent — see :meth:`resend_seconds`).
"""

from __future__ import annotations

import dataclasses

from repro.arch import calibration as cal

__all__ = ["Mailbox", "MailboxEmpty", "MailboxFull", "MAILBOX_DEPTH"]

#: SPU inbound mailbox depth, in 32-bit words.
MAILBOX_DEPTH = 4


class MailboxEmpty(RuntimeError):
    """A read from a mailbox holding no words (would block forever)."""


class MailboxFull(RuntimeError):
    """A post to a mailbox already holding ``depth`` words."""


@dataclasses.dataclass
class Mailbox:
    """A 32-bit-word mailbox channel with blocking send/receive cost."""

    transfer_s: float = cal.SPE_MAILBOX_S
    depth: int = MAILBOX_DEPTH
    sends: int = 0
    receives: int = 0
    drops: int = 0
    queue: list[int] = dataclasses.field(default_factory=list)

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError(f"depth must be >= 1, got {self.depth}")

    def __len__(self) -> int:
        return len(self.queue)

    @property
    def full(self) -> bool:
        return len(self.queue) >= self.depth

    def put(self, word: int) -> None:
        """Post one 32-bit word; raises :class:`MailboxFull` past depth."""
        if self.full:
            raise MailboxFull(
                f"mailbox holds {len(self.queue)}/{self.depth} words; "
                "the writer would block"
            )
        self.queue.append(int(word) & 0xFFFFFFFF)

    def get(self) -> int:
        """Pop the oldest word; raises :class:`MailboxEmpty` when none."""
        if not self.queue:
            raise MailboxEmpty("mailbox is empty; the reader would block")
        return self.queue.pop(0)

    def drop(self) -> None:
        """Lose the newest in-flight word (fault injection)."""
        self.drops += 1
        if self.queue:
            self.queue.pop()

    def send_seconds(self, n_words: int = 1) -> float:
        """Seconds for the PPE to post ``n_words`` to the SPE."""
        if n_words < 1:
            raise ValueError(f"n_words must be >= 1, got {n_words}")
        self.sends += n_words
        return n_words * self.transfer_s

    def receive_seconds(self, n_words: int = 1) -> float:
        """Seconds for the PPE to read ``n_words`` back from the SPE."""
        if n_words < 1:
            raise ValueError(f"n_words must be >= 1, got {n_words}")
        self.receives += n_words
        return n_words * self.transfer_s

    def resend_seconds(self) -> float:
        """Cost of re-posting one dropped word: the ack-timeout wait
        (modelled as one mailbox round trip) plus the resend itself."""
        return 2 * self.transfer_s + self.send_seconds()
