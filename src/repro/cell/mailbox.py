"""PPE<->SPE mailbox signalling (section 5.1's launch-overhead fix).

"The communication between the PPE and SPEs is not limited to large
asynchronous DMA transfers; there are other channels ('mailboxes') that
can be used for blocking sends or receives of information on the order
of bytes."  The launch-once strategy signals each SPE through its
inbound mailbox every step instead of respawning threads.
"""

from __future__ import annotations

import dataclasses

from repro.arch import calibration as cal

__all__ = ["Mailbox"]


@dataclasses.dataclass
class Mailbox:
    """A 32-bit-word mailbox channel with blocking send/receive cost."""

    transfer_s: float = cal.SPE_MAILBOX_S
    sends: int = 0
    receives: int = 0

    def send_seconds(self, n_words: int = 1) -> float:
        """Seconds for the PPE to post ``n_words`` to the SPE."""
        if n_words < 1:
            raise ValueError(f"n_words must be >= 1, got {n_words}")
        self.sends += n_words
        return n_words * self.transfer_s

    def receive_seconds(self, n_words: int = 1) -> float:
        """Seconds for the PPE to read ``n_words`` back from the SPE."""
        if n_words < 1:
            raise ValueError(f"n_words must be >= 1, got {n_words}")
        self.receives += n_words
        return n_words * self.transfer_s
