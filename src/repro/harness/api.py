"""Harness orchestration: roster → jobs → cache → scheduler → run store.

:func:`run_roster` is the one entry point every front-end shares — the
``python -m repro.harness`` CLI, the legacy
``repro.experiments.runner`` shim, and the tests (which feed it stub
jobs instead of the real registry).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.harness.fingerprint import code_fingerprint
from repro.harness.jobs import STATUS_OK, Job, job_cache_key
from repro.harness.scheduler import run_jobs
from repro.harness.store import RunStore

__all__ = [
    "RunOutcome",
    "attach_tuned",
    "jobs_from_registry",
    "run_roster",
    "diff_runs",
    "manifest_essence",
    "COUNTER_REGRESSION_TOLERANCE",
]

#: Relative drift above which a hardware counter difference between two
#: observed runs counts as a regression in ``diff``.  Exact counters
#: (count/bytes units) are deterministic, so any drift at all on them is
#: already suspicious; 5% keeps the gate robust for derived quantities.
COUNTER_REGRESSION_TOLERANCE = 0.05


@dataclasses.dataclass(frozen=True)
class RunOutcome:
    """What a roster execution produced."""

    run_id: str | None
    manifest: dict[str, Any]
    records: tuple[dict[str, Any], ...]  # roster order

    @property
    def failures(self) -> int:
        return self.manifest["failures"]

    @property
    def exit_code(self) -> int:
        return 1 if self.failures else 0


def jobs_from_registry(
    *,
    quick: bool = False,
    force_path: str | None = None,
    fault_plan: Mapping[str, Any] | None = None,
    replicas: int | None = None,
    only: Iterable[str] | None = None,
    skip: Iterable[str] = (),
    observe: bool = False,
) -> list[Job]:
    """Build the experiment roster as harness jobs.

    ``only``/``skip`` filter by experiment id and raise ``KeyError`` on
    unknown ids (so CLI typos fail loudly before any compute).
    ``fault_plan`` (a JSON-native ``FaultPlan.to_dict()``) reaches the
    specs that accept it and lands in their job params — so it is part
    of the cache key, and runs under different plans never alias.
    ``replicas`` reaches the specs that accept it the same way (and is
    likewise part of the cache key).  ``observe`` runs every job under
    an observation session: hardware counters land in the result, trace
    documents in the run store.
    """
    from repro.experiments.registry import EXPERIMENTS, spec_for

    for eid in list(only or []) + list(skip):
        spec_for(eid)  # raises KeyError on unknown ids
    wanted = set(only) if only else None
    skipped = set(skip)
    jobs = []
    for spec in EXPERIMENTS:
        eid = spec.experiment_id
        if (wanted is not None and eid not in wanted) or eid in skipped:
            continue
        jobs.append(
            Job(
                job_id=eid,
                experiment_id=eid,
                module=spec.module,
                func=spec.func,
                params=spec.params(
                    quick=quick,
                    force_path=force_path,
                    fault_plan=fault_plan,
                    replicas=replicas,
                ),
                observe=observe,
            )
        )
    return jobs


def attach_tuned(
    jobs: Sequence[Job],
    *,
    tuned_store: Any | None = None,
    quick: bool = False,
    fingerprint: str | None = None,
) -> list[Job]:
    """Attach persisted tuned configs to the jobs they were tuned for.

    For each job, the tuned store is consulted for artifacts matching
    (experiment id, quick, code fingerprint); when any apply, the
    merged values ride along in ``Job.tuned`` — the worker applies them
    ambiently around the experiment function, the tuned-config
    fingerprint joins the cache key, and the run record shows exactly
    what was applied.  Jobs with no matching artifact (or whose
    artifacts carry empty winning values, i.e. the defaults won) pass
    through untouched, so their cache keys stay byte-identical to
    untuned runs.
    """
    from repro.tune.artifact import TunedStore, merge_for_experiment

    if tuned_store is None:
        tuned_store = TunedStore()
    fingerprint = fingerprint or code_fingerprint()
    assignments: dict[str, Any] = {}
    out: list[Job] = []
    for job in jobs:
        if job.experiment_id not in assignments:
            assignments[job.experiment_id] = merge_for_experiment(
                tuned_store,
                job.experiment_id,
                quick=quick,
                code_fingerprint=fingerprint,
            )
        assignment = assignments[job.experiment_id]
        if assignment is None or not assignment.values:
            out.append(job)
            continue
        out.append(
            dataclasses.replace(
                job,
                tuned={
                    "values": dict(assignment.values),
                    "fingerprint": assignment.fingerprint,
                    "keys": list(assignment.keys),
                },
            )
        )
    return out


def _summary_row(record: Mapping[str, Any]) -> dict[str, Any]:
    return {
        "job_id": record["job_id"],
        "experiment_id": record["experiment_id"],
        "cache_key": record.get("cache_key"),
        "status": record["status"],
        "cached": bool(record.get("cached", False)),
        "attempts": record.get("attempts", 1),
        "wall_seconds": record.get("wall_seconds", 0.0),
        "all_passed": record.get("all_passed"),
    }


def run_roster(
    jobs: Sequence[Job],
    *,
    store: RunStore | None = None,
    max_workers: int | None = None,
    timeout: float | None = None,
    retries: int = 0,
    backoff: float = 0.25,
    use_cache: bool = True,
    invalidate: Iterable[str] = (),
    run_meta: Mapping[str, Any] | None = None,
    fingerprint: str | None = None,
    on_record: Callable[[dict[str, Any]], None] | None = None,
) -> RunOutcome:
    """Execute a job roster and (optionally) persist it.

    With ``store=None`` the run is ephemeral — no cache, no artifacts —
    which is exactly what the legacy runner shim wants.  ``on_record``
    fires for every job (cached replays included) as its record becomes
    available.  A job counts as a *failure* when it did not finish
    (``status != "ok"``) or finished outside its paper-shape bands
    (``all_passed`` false); the manifest records both notions.
    """
    wall_start = time.perf_counter()
    fingerprint = fingerprint or code_fingerprint()

    if store is not None:
        for eid in invalidate:
            store.invalidate(eid)

    keyed: list[tuple[Job, str]] = [
        (job, job_cache_key(job, fingerprint)) for job in jobs
    ]
    records_by_id: dict[str, dict[str, Any]] = {}
    to_run: list[dict[str, Any]] = []
    for job, key in keyed:
        cached = (
            store.cache_get(key) if (use_cache and store is not None) else None
        )
        if cached is not None and cached.get("status") == STATUS_OK:
            replay = dict(cached)
            replay["cached"] = True
            records_by_id[job.job_id] = replay
            if on_record is not None:
                on_record(replay)
        else:
            to_run.append(job.payload(cache_key=key))

    def fresh_record(record: dict[str, Any]) -> None:
        record["cached"] = False
        records_by_id[record["job_id"]] = record
        if on_record is not None:
            on_record(record)

    run_jobs(
        to_run,
        max_workers=max_workers,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        on_record=fresh_record,
    )

    ordered = tuple(records_by_id[job.job_id] for job, _key in keyed)
    not_ok = sum(1 for r in ordered if r["status"] != STATUS_OK)
    band_fail = sum(1 for r in ordered if r.get("all_passed") is False)

    run_id = store.new_run_id() if store is not None else None
    manifest: dict[str, Any] = {
        "run_id": run_id,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "code_fingerprint": fingerprint,
        "meta": dict(run_meta or {}),
        "jobs": [_summary_row(r) for r in ordered],
        "job_count": len(ordered),
        "cached_count": sum(1 for r in ordered if r.get("cached")),
        "not_ok_count": not_ok,
        "band_failure_count": band_fail,
        "failures": not_ok + band_fail,
        "wall_seconds_total": time.perf_counter() - wall_start,
    }
    if store is not None:
        for record in ordered:
            store.write_job_record(run_id, record)
            if record.get("trace"):
                store.write_trace(run_id, record["job_id"], record["trace"])
            if record["status"] == STATUS_OK and not record.get("cached"):
                store.cache_put(record["cache_key"], record)
        store.write_manifest(run_id, manifest)
    return RunOutcome(run_id=run_id, manifest=manifest, records=ordered)


def manifest_essence(manifest: Mapping[str, Any]) -> list[tuple[Any, ...]]:
    """The deterministic projection of a manifest.

    Everything that must be identical between a serial and a parallel
    run of the same roster: ids, cache keys, statuses, band outcomes.
    Wall-clock and timestamps are excluded by construction.
    """
    return [
        (
            row["job_id"],
            row["experiment_id"],
            row["cache_key"],
            row["status"],
            row["all_passed"],
        )
        for row in manifest["jobs"]
    ]


def _checks_by_experiment(
    store: RunStore, run_id: str
) -> dict[str, dict[str, Any]]:
    out: dict[str, dict[str, Any]] = {}
    for record in store.iter_job_records(run_id):
        checks = {}
        counters: dict[str, float] = {}
        if record.get("result"):
            for check in record["result"].get("checks", []):
                checks[check["key"]] = check
            counters = dict(record["result"].get("counters") or {})
        out[record["experiment_id"]] = {
            "status": record["status"],
            "all_passed": record.get("all_passed"),
            "checks": checks,
            "counters": counters,
        }
    return out


def diff_runs(store: RunStore, run_a: str, run_b: str) -> tuple[list[str], int]:
    """Compare two stored runs' shape checks; return (lines, regressions).

    A *regression* is a check that passed in ``run_a`` and fails in
    ``run_b``, an experiment that was ok in ``run_a`` and did not
    finish in ``run_b``, or — when both runs were observed — a hardware
    counter whose relative drift exceeds
    :data:`COUNTER_REGRESSION_TOLERANCE`.  Measured-value drift within
    a shape band is reported but not counted.
    """
    a = _checks_by_experiment(store, run_a)
    b = _checks_by_experiment(store, run_b)
    lines: list[str] = []
    regressions = 0

    for eid in sorted(set(a) | set(b)):
        if eid not in b:
            lines.append(f"{eid}: only in {run_a}")
            continue
        if eid not in a:
            lines.append(f"{eid}: only in {run_b}")
            continue
        ea, eb = a[eid], b[eid]
        if ea["status"] == STATUS_OK and eb["status"] != STATUS_OK:
            regressions += 1
            lines.append(
                f"{eid}: REGRESSION — was ok, now {eb['status']}"
            )
            continue
        if ea["status"] != STATUS_OK or eb["status"] != STATUS_OK:
            lines.append(f"{eid}: status {ea['status']} -> {eb['status']}")
            continue
        for key in sorted(set(ea["checks"]) | set(eb["checks"])):
            ca, cb = ea["checks"].get(key), eb["checks"].get(key)
            if ca is None or cb is None:
                lines.append(
                    f"{eid}/{key}: only in {run_a if cb is None else run_b}"
                )
                continue
            if ca["measured"] == cb["measured"] and ca["passed"] == cb["passed"]:
                continue
            flag = ""
            if ca["passed"] and not cb["passed"]:
                regressions += 1
                flag = " REGRESSION"
            elif not ca["passed"] and cb["passed"]:
                flag = " fixed"
            lines.append(
                f"{eid}/{key}: {ca['measured']:.6g} -> {cb['measured']:.6g} "
                f"(band {cb['low']:.4g}..{cb['high']:.4g}) "
                f"[{'PASS' if ca['passed'] else 'FAIL'}->"
                f"{'PASS' if cb['passed'] else 'FAIL'}]{flag}"
            )
        # Hardware-counter gate: only when both runs observed this
        # experiment — a plain-vs-observed diff is not a regression.
        if ea["counters"] and eb["counters"]:
            from repro.obs.counters import diff_counters

            for name, va, vb, drift in diff_counters(
                ea["counters"], eb["counters"],
                tolerance=COUNTER_REGRESSION_TOLERANCE,
            ):
                regressions += 1
                lines.append(
                    f"{eid}/{name}: counter {va:.6g} -> {vb:.6g} "
                    f"({drift:+.1%} drift) COUNTER REGRESSION"
                )
    if not lines:
        lines.append("runs are identical on every shape check")
    return lines, regressions
