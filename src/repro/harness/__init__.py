"""Parallel, cached, artifact-producing experiment execution.

The harness turns the paper's roster (Table 1, Figs 5–9, ablations)
into declarative jobs with content-addressed cache keys, fans them out
across a process pool with per-job timeout/retry/crash isolation, and
persists every run under ``runs/<run_id>/`` for replay, ``show`` and
``diff``.  See ``python -m repro.harness --help``.
"""

from repro.harness.api import (
    RunOutcome,
    attach_tuned,
    diff_runs,
    jobs_from_registry,
    manifest_essence,
    run_roster,
)
from repro.harness.fingerprint import code_fingerprint
from repro.harness.jobs import Job, execute_job, job_cache_key
from repro.harness.scheduler import run_jobs
from repro.harness.store import DEFAULT_RUNS_DIR, RunStore

__all__ = [
    "DEFAULT_RUNS_DIR",
    "Job",
    "RunOutcome",
    "RunStore",
    "attach_tuned",
    "code_fingerprint",
    "diff_runs",
    "execute_job",
    "job_cache_key",
    "jobs_from_registry",
    "manifest_essence",
    "run_jobs",
    "run_roster",
]
