"""The harness job model and the worker-side execution function.

A :class:`Job` is the declarative unit the scheduler moves around: an
id, an importable entry point, JSON-serializable parameters, and a
content-addressed cache key.  :func:`execute_job` is the *only* code
that runs inside worker processes — it takes a plain-dict payload
(picklable under any multiprocessing start method), runs the
experiment with stdout/stderr captured, and returns a plain-dict
record, catching every Python-level failure so one bad experiment
can never take down the pool.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import importlib
import io
import json
import threading
import time
import traceback
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "Job",
    "job_cache_key",
    "execute_job",
    "STATUS_OK",
    "STATUS_FAILED",
    "STATUS_TIMEOUT",
    "STATUS_PREEMPTED",
    "HEARTBEAT_INTERVAL",
]

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
#: A job the scheduler aborted mid-flight on external request (stuck-worker
#: watchdog, deadline enforcement, or shutdown drain) — never cached; the
#: caller decides whether to requeue or settle it.
STATUS_PREEMPTED = "preempted"

#: Seconds between worker heartbeat touches while a job executes.
HEARTBEAT_INTERVAL = 0.5


def _heartbeat_loop(path: Path, stop: threading.Event) -> None:
    """Touch ``path`` until ``stop`` is set.

    Runs as a daemon thread inside the worker process, so the beat
    reflects *process* liveness: a frozen worker (SIGSTOP, D-state, a
    dead pool) stops beating, while a merely slow experiment keeps its
    heartbeat fresh.  Busy-loop runaways are the per-job timeout's
    domain, not the watchdog's.
    """
    while True:
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.touch()
        except OSError:
            pass  # a vanished heartbeat dir must never kill the job
        if stop.wait(HEARTBEAT_INTERVAL):
            return


@dataclasses.dataclass(frozen=True)
class Job:
    """One schedulable experiment invocation."""

    job_id: str
    experiment_id: str
    module: str
    func: str
    params: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    #: run the experiment inside an observation session: its device runs
    #: collect hardware counters (merged into the result) and a Chrome
    #: trace document (stored alongside the job record)
    observe: bool = False
    #: tuned-config assignment applied around the experiment function:
    #: ``{"values": {...}, "fingerprint": str, "keys": [...]}`` (see
    #: :func:`repro.harness.api.attach_tuned`); ``None`` = untuned
    tuned: Mapping[str, Any] | None = None

    def payload(self, cache_key: str | None = None) -> dict[str, Any]:
        """The picklable dict shipped to worker processes."""
        return {
            "job_id": self.job_id,
            "experiment_id": self.experiment_id,
            "module": self.module,
            "func": self.func,
            "params": dict(self.params),
            "cache_key": cache_key,
            "observe": self.observe,
            "tuned": dict(self.tuned) if self.tuned is not None else None,
        }


def job_cache_key(job: Job, code_fingerprint: str) -> str:
    """Content-addressed key: ``{experiment id, config, code}``.

    Tuples and lists hash identically (both serialize as JSON arrays),
    so a key computed from an in-memory roster matches one recomputed
    from a JSON-round-tripped manifest.
    """
    keyed: dict[str, Any] = {
        "experiment_id": job.experiment_id,
        "module": job.module,
        "func": job.func,
        "params": job.params,
        "code": code_fingerprint,
    }
    if job.observe:
        # Observed records carry counters and a trace that plain records
        # lack, so they must not alias; plain keys stay byte-identical
        # to pre-observability keys (old caches remain valid).
        keyed["observe"] = True
    if job.tuned is not None and job.tuned.get("values"):
        # The tuned-config fingerprint content-addresses the applied
        # values, so a tuned record can never replay for an untuned run
        # (or for a different tuned config) and vice versa.  Untuned
        # jobs keep byte-identical pre-tuner keys.
        keyed["tuned"] = job.tuned["fingerprint"]
    payload = json.dumps(keyed, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


def execute_job(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Run one job payload and return its record dict.

    Never raises for experiment-level errors: exceptions become a
    ``status="failed"`` record carrying the traceback.  The record is
    JSON-native throughout — the run store persists it verbatim.
    """
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    heartbeat_stop: threading.Event | None = None
    if payload.get("heartbeat_path"):
        # The service supervisor watches this file's mtime; the thread
        # is daemonic so a crashing worker never blocks on it.
        heartbeat_stop = threading.Event()
        threading.Thread(
            target=_heartbeat_loop,
            args=(Path(payload["heartbeat_path"]), heartbeat_stop),
            daemon=True,
            name="repro-heartbeat",
        ).start()
    captured = io.StringIO()
    record: dict[str, Any] = {
        "job_id": payload["job_id"],
        "experiment_id": payload["experiment_id"],
        "module": payload["module"],
        "func": payload["func"],
        "params": dict(payload.get("params") or {}),
        "cache_key": payload.get("cache_key"),
        "status": STATUS_OK,
        "result": None,
        "all_passed": None,
        "traceback": None,
        "stdout": "",
        "wall_seconds": 0.0,
        "cpu_seconds": 0.0,
        "trace": None,
        "tuned": dict(payload["tuned"]) if payload.get("tuned") else None,
    }
    try:
        with contextlib.redirect_stdout(captured), contextlib.redirect_stderr(captured):
            func = getattr(importlib.import_module(payload["module"]), payload["func"])
            tuned = payload.get("tuned") or {}
            if tuned.get("values"):
                from repro.tune.context import applied

                tuned_cm = applied(tuned["values"])
            else:
                tuned_cm = contextlib.nullcontext()
            with tuned_cm:
                if payload.get("observe"):
                    from repro.obs.context import collect

                    with collect() as session:
                        result = func(**record["params"])
                    if session.runs:
                        result = dataclasses.replace(
                            result, counters=session.merged_counters()
                        )
                        record["trace"] = session.chrome_trace()
                else:
                    result = func(**record["params"])
        record["result"] = result.to_dict()
        record["all_passed"] = bool(result.all_passed)
    except Exception:
        record["status"] = STATUS_FAILED
        record["traceback"] = traceback.format_exc()
    finally:
        if heartbeat_stop is not None:
            heartbeat_stop.set()
    record["stdout"] = captured.getvalue()
    record["wall_seconds"] = time.perf_counter() - wall_start
    record["cpu_seconds"] = time.process_time() - cpu_start
    return record
