"""Process-pool job scheduler: fan-out, timeout, retry, crash isolation.

Built on :class:`concurrent.futures.ProcessPoolExecutor`.  The roster's
jobs are independent, so they simply fan out across ``max_workers``
processes; the loop tracks a deadline per running future and a
``not_before`` per retry so bounded exponential backoff never blocks a
free slot.

Failure containment comes in three tiers:

* **Python exception in a job** — caught *inside* the worker by
  :func:`repro.harness.jobs.execute_job`; comes back as a normal
  ``failed`` record.  Other jobs are untouched.
* **Timeout** — ``concurrent.futures`` cannot interrupt a running
  worker, so the expired job is recorded (or requeued, if it has retry
  budget), the pool's processes are terminated, and a fresh pool is
  built; in-flight innocents are requeued without consuming an attempt.
* **Worker death** (hard crash / OOM-kill) — surfaces as
  ``BrokenProcessPool``; handled like a timeout except the dead job's
  attempt is consumed.

``max_workers=0`` (or ``None``) runs everything inline in the calling
process — same records, deterministic roster order, no pool; timeouts
are not enforceable inline and are ignored there.
"""

from __future__ import annotations

import dataclasses
import hashlib
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Mapping, Sequence

from repro.harness.jobs import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_PREEMPTED,
    STATUS_TIMEOUT,
    execute_job,
)

__all__ = ["run_jobs"]

#: Minimum poll interval while waiting on deadlines/backoff (seconds).
_MIN_WAIT = 0.05

#: Maximum poll interval while a cancel event is armed: the abort path
#: must be noticed promptly even when no future completes.
_CANCEL_POLL = 0.25

#: Grace given to SIGTERMed pool workers before escalating to SIGKILL.
_TERMINATE_GRACE = 0.5


def _worker_init() -> None:
    """Reset signal plumbing inherited across ``fork``.

    Pool workers are forked from whatever front-end drives the harness.
    An asyncio parent (e.g. ``repro.service``) registers its signal
    handlers through a wakeup fd, and that fd survives the fork — so a
    SIGTERM aimed at a *worker* (pool teardown/rebuild) would be relayed
    straight into the parent's event loop and shut the server down.
    """
    signal.set_wakeup_fd(-1)
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, signal.SIG_DFL)


@dataclasses.dataclass
class _Pending:
    payload: dict[str, Any]
    attempts: int = 0
    not_before: float = 0.0


def _error_record(payload: Mapping[str, Any], status: str, message: str) -> dict[str, Any]:
    """A scheduler-side record for a job that never returned one."""
    return {
        "job_id": payload["job_id"],
        "experiment_id": payload["experiment_id"],
        "module": payload["module"],
        "func": payload["func"],
        "params": dict(payload.get("params") or {}),
        "cache_key": payload.get("cache_key"),
        "status": status,
        "result": None,
        "all_passed": None,
        "traceback": message,
        "stdout": "",
        "wall_seconds": 0.0,
        "cpu_seconds": 0.0,
    }


def _backoff_delay(
    backoff: float, attempts: int, key: str | None = None
) -> float:
    """Exponential backoff with deterministic per-job jitter.

    Jitter decorrelates retry herds when many jobs fail together, but a
    wall-clock or PRNG source would make reruns unreproducible — so it
    is derived from the job's cache key (or id) and the attempt number:
    the same job retries on the same schedule in every run.  The factor
    spreads delays over [1x, 1.5x].
    """
    delay = backoff * (2.0 ** max(0, attempts - 1))
    if key is not None:
        digest = hashlib.sha256(f"{key}:{attempts}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
        delay *= 1.0 + 0.5 * fraction
    return delay


def _job_key(payload: Mapping[str, Any]) -> str:
    return str(payload.get("cache_key") or payload.get("job_id") or "")


def _preempted_record(payload: Mapping[str, Any], attempts: int) -> dict[str, Any]:
    record = _error_record(
        payload,
        STATUS_PREEMPTED,
        "preempted: the scheduler was asked to abandon this job "
        "(watchdog, deadline, or shutdown drain)",
    )
    record["attempts"] = attempts
    return record


def _run_inline(
    payloads: Sequence[Mapping[str, Any]],
    *,
    retries: int,
    backoff: float,
    execute: Callable[[Mapping[str, Any]], dict[str, Any]],
    on_record: Callable[[dict[str, Any]], None] | None,
    cancel_event: threading.Event | None = None,
) -> dict[str, dict[str, Any]]:
    records: dict[str, dict[str, Any]] = {}
    for payload in payloads:
        if cancel_event is not None and cancel_event.is_set():
            record = _preempted_record(payload, 0)
            records[payload["job_id"]] = record
            if on_record is not None:
                on_record(record)
            continue
        attempts = 0
        while True:
            attempts += 1
            try:
                record = execute(payload)
            except Exception as exc:  # execute_job shouldn't raise; belt & braces
                record = _error_record(
                    payload, STATUS_FAILED, f"scheduler-level error: {exc!r}"
                )
            record["attempts"] = attempts
            if record["status"] == STATUS_OK or attempts > retries:
                break
            if cancel_event is not None and cancel_event.is_set():
                break
            time.sleep(_backoff_delay(backoff, attempts, _job_key(payload)))
        records[payload["job_id"]] = record
        if on_record is not None:
            on_record(record)
    return records


class _Pool:
    """A replaceable ProcessPoolExecutor wrapper.

    Timeout enforcement needs to *kill* a running worker, which the
    executor API does not expose — so on timeout/crash the whole pool
    is torn down (terminating its processes) and rebuilt.  Timeouts are
    the rare path; losing in-flight sibling work is an accepted cost,
    and those siblings are requeued without consuming an attempt.
    """

    def __init__(self, max_workers: int):
        self.max_workers = max_workers
        self._executor = ProcessPoolExecutor(
            max_workers=max_workers, initializer=_worker_init
        )

    def submit(self, fn: Callable, payload: Mapping[str, Any]) -> Future:
        return self._executor.submit(fn, payload)

    def rebuild(self) -> None:
        self.terminate()
        self._executor = ProcessPoolExecutor(
            max_workers=self.max_workers, initializer=_worker_init
        )

    def terminate(self) -> None:
        processes = getattr(self._executor, "_processes", None) or {}
        procs = list(processes.values())
        for proc in procs:
            try:
                proc.terminate()
            except Exception:
                pass
        # SIGTERM cannot reach a stopped (SIGSTOPped) or wedged worker —
        # it just stays pending.  Give the polite signal a short grace,
        # then SIGKILL whatever is still alive so preemption always
        # reclaims the process.
        deadline = time.monotonic() + _TERMINATE_GRACE
        for proc in procs:
            try:
                proc.join(max(0.0, deadline - time.monotonic()))
            except Exception:
                pass
        for proc in procs:
            try:
                if proc.is_alive():
                    proc.kill()
            except Exception:
                pass
        try:
            self._executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass


def run_jobs(
    payloads: Sequence[Mapping[str, Any]],
    *,
    max_workers: int | None = None,
    timeout: float | None = None,
    retries: int = 0,
    backoff: float = 0.25,
    execute: Callable[[Mapping[str, Any]], dict[str, Any]] = execute_job,
    on_record: Callable[[dict[str, Any]], None] | None = None,
    cancel_event: threading.Event | None = None,
) -> dict[str, dict[str, Any]]:
    """Run every payload; return ``{job_id: record}``.

    ``retries`` is the number of *extra* attempts granted after a
    failed/timed-out one (so a job runs at most ``retries + 1`` times),
    with ``backoff * 2**(attempt-1)`` seconds between attempts.
    ``on_record`` fires once per job with its final record, in
    completion order.

    ``cancel_event`` arms external preemption: once the event is set,
    in-flight workers are terminated (SIGTERM, then SIGKILL after a
    short grace), and every unfinished job comes back as a
    ``status="preempted"`` record instead of blocking to completion.
    Completed work is still harvested and returned normally.
    """
    if not payloads:
        return {}
    if not max_workers:
        return _run_inline(
            payloads,
            retries=retries,
            backoff=backoff,
            execute=execute,
            on_record=on_record,
            cancel_event=cancel_event,
        )

    records: dict[str, dict[str, Any]] = {}
    pending: deque[_Pending] = deque(_Pending(dict(p)) for p in payloads)
    running: dict[Future, tuple[_Pending, float | None]] = {}
    pool = _Pool(max_workers)

    def finish(item: _Pending, record: dict[str, Any]) -> None:
        record["attempts"] = item.attempts
        records[item.payload["job_id"]] = record
        if on_record is not None:
            on_record(record)

    def finish_or_retry(item: _Pending, record: dict[str, Any]) -> None:
        if record["status"] != STATUS_OK and item.attempts <= retries:
            item.not_before = time.monotonic() + _backoff_delay(
                backoff, item.attempts, _job_key(item.payload)
            )
            pending.append(item)
        else:
            finish(item, record)

    def drain_running_into_pending() -> None:
        """Requeue every in-flight job (pool is about to be rebuilt).

        Completed futures are harvested first; the rest go back on the
        queue without consuming an attempt — they were innocent
        bystanders of another job's timeout or crash.
        """
        for fut in list(running):
            item, _deadline = running.pop(fut)
            if fut.done():
                try:
                    record = fut.result(timeout=0)
                except Exception:
                    pending.appendleft(item)
                else:
                    item.attempts += 1
                    finish_or_retry(item, record)
            else:
                pending.appendleft(item)

    def abort_preempted() -> None:
        """Harvest finished futures, then record everything else as
        preempted — in-flight work and queued work alike."""
        for fut in list(running):
            item, _deadline = running.pop(fut)
            if fut.done():
                try:
                    record = fut.result(timeout=0)
                except Exception:
                    item.attempts += 1
                    finish(item, _preempted_record(item.payload, item.attempts))
                else:
                    item.attempts += 1
                    finish(item, record)
            else:
                finish(item, _preempted_record(item.payload, item.attempts))
        while pending:
            item = pending.popleft()
            finish(item, _preempted_record(item.payload, item.attempts))

    try:
        while pending or running:
            if cancel_event is not None and cancel_event.is_set():
                abort_preempted()
                break
            now = time.monotonic()
            # Fill free slots with eligible (backoff-expired) jobs.
            for _ in range(len(pending)):
                if len(running) >= max_workers:
                    break
                item = pending.popleft()
                if item.not_before > now:
                    pending.append(item)
                    continue
                deadline = now + timeout if timeout else None
                running[pool.submit(execute, item.payload)] = (item, deadline)

            if not running:
                # Everything queued is backing off; sleep to the nearest.
                wake = min(item.not_before for item in pending)
                nap = max(_MIN_WAIT, wake - time.monotonic())
                if cancel_event is not None:
                    nap = min(nap, _CANCEL_POLL)
                time.sleep(nap)
                continue

            horizons = [d for _item, d in running.values() if d is not None]
            if pending:
                horizons.extend(
                    item.not_before for item in pending if item.not_before > now
                )
            wait_for = (
                max(_MIN_WAIT, min(horizons) - now) if horizons else None
            )
            if cancel_event is not None:
                # Bound the wait so a cancel request is noticed promptly
                # even when nothing completes and no deadline is near.
                wait_for = (
                    _CANCEL_POLL if wait_for is None
                    else min(wait_for, _CANCEL_POLL)
                )
            done, _not_done = wait(
                set(running), timeout=wait_for, return_when=FIRST_COMPLETED
            )

            pool_broken = False
            for fut in done:
                item, _deadline = running.pop(fut)
                item.attempts += 1
                try:
                    record = fut.result()
                except BrokenProcessPool:
                    pool_broken = True
                    record = _error_record(
                        item.payload,
                        STATUS_FAILED,
                        "worker process died before returning a record "
                        "(hard crash or kill); pool rebuilt",
                    )
                except Exception as exc:
                    record = _error_record(
                        item.payload, STATUS_FAILED, f"scheduler-level error: {exc!r}"
                    )
                finish_or_retry(item, record)
            if pool_broken:
                drain_running_into_pending()
                pool.rebuild()
                continue

            # Enforce per-job deadlines.
            now = time.monotonic()
            expired = [
                fut
                for fut, (_item, deadline) in running.items()
                if deadline is not None and deadline <= now and not fut.done()
            ]
            if expired:
                for fut in expired:
                    item, _deadline = running.pop(fut)
                    item.attempts += 1
                    record = _error_record(
                        item.payload,
                        STATUS_TIMEOUT,
                        f"job exceeded its {timeout:g}s timeout "
                        f"(attempt {item.attempts}); worker terminated",
                    )
                    finish_or_retry(item, record)
                drain_running_into_pending()
                pool.rebuild()
    finally:
        pool.terminate()
    return records
