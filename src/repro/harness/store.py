"""The on-disk run store: ``runs/<run_id>/`` plus a shared result cache.

Layout::

    runs/
      cache/<cache_key>.json     # content-addressed successful records
      <run_id>/
        manifest.json            # run metadata + per-job summary rows
        jobs/<job_id>.json       # full per-job records (incl. cached replays)
        traces/<job_id>.trace.json   # Chrome trace docs (observed runs only)

Run ids sort chronologically (``YYYYmmdd-HHMMSS-xxxxxx``).  Every run
directory is self-contained: replayed jobs get their full record copied
into the run, so ``show``/``diff`` never chase cache files that may
have been invalidated since.
"""

from __future__ import annotations

import json
import time
import uuid
from pathlib import Path
from typing import Any, Iterator, Mapping

__all__ = ["RunStore", "DEFAULT_RUNS_DIR"]

DEFAULT_RUNS_DIR = "runs"

_CACHE_DIR = "cache"
_JOBS_DIR = "jobs"
_TRACES_DIR = "traces"
_MANIFEST = "manifest.json"


def _dump(path: Path, data: Mapping[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)


def _load(path: Path) -> dict[str, Any]:
    return json.loads(path.read_text())


class RunStore:
    """Filesystem-backed store for harness runs and cached job records."""

    def __init__(self, root: Path | str = DEFAULT_RUNS_DIR):
        self.root = Path(root)

    # -- run ids -------------------------------------------------------

    def new_run_id(self) -> str:
        now = time.time()
        stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime(now))
        # microseconds keep same-second runs (e.g. a cached replay right
        # after a fresh run) sorting in true chronological order
        micros = int((now % 1.0) * 1_000_000)
        return f"{stamp}{micros:06d}-{uuid.uuid4().hex[:6]}"

    def run_dir(self, run_id: str) -> Path:
        return self.root / run_id

    def list_runs(self) -> list[str]:
        """Run ids, oldest first (ids sort chronologically)."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_dir() and p.name != _CACHE_DIR and (p / _MANIFEST).exists()
        )

    # -- manifests and job records ------------------------------------

    def write_manifest(self, run_id: str, manifest: Mapping[str, Any]) -> Path:
        path = self.run_dir(run_id) / _MANIFEST
        _dump(path, manifest)
        return path

    def read_manifest(self, run_id: str) -> dict[str, Any]:
        path = self.run_dir(run_id) / _MANIFEST
        if not path.exists():
            raise FileNotFoundError(
                f"no manifest for run {run_id!r} under {self.root}"
            )
        return _load(path)

    def write_job_record(self, run_id: str, record: Mapping[str, Any]) -> Path:
        path = self.run_dir(run_id) / _JOBS_DIR / f"{record['job_id']}.json"
        _dump(path, record)
        return path

    def read_job_record(self, run_id: str, job_id: str) -> dict[str, Any]:
        return _load(self.run_dir(run_id) / _JOBS_DIR / f"{job_id}.json")

    def iter_job_records(self, run_id: str) -> Iterator[dict[str, Any]]:
        """Records in the manifest's roster order."""
        manifest = self.read_manifest(run_id)
        for entry in manifest.get("jobs", []):
            yield self.read_job_record(run_id, entry["job_id"])

    # -- trace artifacts ----------------------------------------------

    def trace_path(self, run_id: str, job_id: str) -> Path:
        return self.run_dir(run_id) / _TRACES_DIR / f"{job_id}.trace.json"

    def write_trace(
        self, run_id: str, job_id: str, trace: Mapping[str, Any]
    ) -> Path:
        """Persist one job's Chrome trace-event document."""
        path = self.trace_path(run_id, job_id)
        _dump(path, trace)
        return path

    def read_trace(self, run_id: str, job_id: str) -> dict[str, Any]:
        path = self.trace_path(run_id, job_id)
        if not path.exists():
            raise FileNotFoundError(
                f"no trace for job {job_id!r} in run {run_id!r} "
                f"(was the run observed with --trace?)"
            )
        return _load(path)

    def list_traces(self, run_id: str) -> list[str]:
        """Job ids with a stored trace document, sorted."""
        traces_dir = self.run_dir(run_id) / _TRACES_DIR
        if not traces_dir.is_dir():
            return []
        return sorted(
            p.name[: -len(".trace.json")]
            for p in traces_dir.glob("*.trace.json")
        )

    # -- result cache --------------------------------------------------

    def _cache_path(self, cache_key: str) -> Path:
        return self.root / _CACHE_DIR / f"{cache_key}.json"

    def cache_get(self, cache_key: str) -> dict[str, Any] | None:
        path = self._cache_path(cache_key)
        if not path.exists():
            return None
        try:
            return _load(path)
        except (OSError, json.JSONDecodeError):
            return None  # a torn cache entry is a miss, not an error

    def cache_put(self, cache_key: str, record: Mapping[str, Any]) -> None:
        _dump(self._cache_path(cache_key), record)

    def invalidate(self, experiment_id: str) -> int:
        """Drop every cached record for one experiment id; return count."""
        cache_dir = self.root / _CACHE_DIR
        if not cache_dir.is_dir():
            return 0
        dropped = 0
        for path in cache_dir.glob("*.json"):
            try:
                record = _load(path)
            except (OSError, json.JSONDecodeError):
                continue
            if record.get("experiment_id") == experiment_id:
                path.unlink(missing_ok=True)
                dropped += 1
        return dropped

    def invalidate_all(self) -> int:
        cache_dir = self.root / _CACHE_DIR
        if not cache_dir.is_dir():
            return 0
        dropped = 0
        for path in cache_dir.glob("*.json"):
            path.unlink(missing_ok=True)
            dropped += 1
        return dropped
