"""The on-disk run store: ``runs/<run_id>/`` plus a shared result cache.

Layout::

    runs/
      cache/<cache_key>.json     # content-addressed successful records
      checkpoints/<cache_key>.ckpt.json   # resumable-job snapshots
      <run_id>/
        manifest.json            # run metadata + per-job summary rows
        jobs/<job_id>.json       # full per-job records (incl. cached replays)
        traces/<job_id>.trace.json   # Chrome trace docs (observed runs only)

Run ids sort chronologically (``YYYYmmdd-HHMMSS-xxxxxx``).  Every run
directory is self-contained: replayed jobs get their full record copied
into the run, so ``show``/``diff`` never chase cache files that may
have been invalidated since.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import uuid
from pathlib import Path
from typing import Any, Iterator, Mapping

__all__ = ["RunStore", "DEFAULT_RUNS_DIR"]

DEFAULT_RUNS_DIR = "runs"

_CACHE_DIR = "cache"
_JOBS_DIR = "jobs"
_TRACES_DIR = "traces"
_CHECKPOINTS_DIR = "checkpoints"
_MANIFEST = "manifest.json"
_CKPT_SUFFIX = ".ckpt.json"


def _dump(path: Path, data: Mapping[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    # The temp name must be unique per writer: the service makes the
    # store multi-client, and two processes writing the same target
    # through one shared ".tmp" would race each other's rename.
    tmp = path.with_name(f"{path.name}.{os.getpid()}-{uuid.uuid4().hex[:8]}.tmp")
    # fsync before the rename: without it a crash can leave the *final*
    # name pointing at zero-length or partial content on some
    # filesystems — the rename is atomic, the data reaching disk is not.
    with tmp.open("w") as handle:
        handle.write(json.dumps(data, indent=2, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(path)


def _load(path: Path) -> dict[str, Any]:
    return json.loads(path.read_text())


class RunStore:
    """Filesystem-backed store for harness runs and cached job records."""

    def __init__(self, root: Path | str = DEFAULT_RUNS_DIR):
        self.root = Path(root)

    # -- run ids -------------------------------------------------------

    def new_run_id(self) -> str:
        now = time.time()
        stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime(now))
        # microseconds keep same-second runs (e.g. a cached replay right
        # after a fresh run) sorting in true chronological order
        micros = int((now % 1.0) * 1_000_000)
        return f"{stamp}{micros:06d}-{uuid.uuid4().hex[:6]}"

    def run_dir(self, run_id: str) -> Path:
        return self.root / run_id

    def list_runs(self) -> list[str]:
        """Run ids, oldest first (ids sort chronologically)."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_dir() and p.name != _CACHE_DIR and (p / _MANIFEST).exists()
        )

    # -- manifests and job records ------------------------------------

    def write_manifest(self, run_id: str, manifest: Mapping[str, Any]) -> Path:
        path = self.run_dir(run_id) / _MANIFEST
        _dump(path, manifest)
        return path

    def read_manifest(self, run_id: str) -> dict[str, Any]:
        path = self.run_dir(run_id) / _MANIFEST
        if not path.exists():
            raise FileNotFoundError(
                f"no manifest for run {run_id!r} under {self.root}"
            )
        return _load(path)

    def write_job_record(self, run_id: str, record: Mapping[str, Any]) -> Path:
        path = self.run_dir(run_id) / _JOBS_DIR / f"{record['job_id']}.json"
        _dump(path, record)
        return path

    def read_job_record(self, run_id: str, job_id: str) -> dict[str, Any]:
        return _load(self.run_dir(run_id) / _JOBS_DIR / f"{job_id}.json")

    def iter_job_records(self, run_id: str) -> Iterator[dict[str, Any]]:
        """Records in the manifest's roster order."""
        manifest = self.read_manifest(run_id)
        for entry in manifest.get("jobs", []):
            yield self.read_job_record(run_id, entry["job_id"])

    # -- trace artifacts ----------------------------------------------

    def trace_path(self, run_id: str, job_id: str) -> Path:
        return self.run_dir(run_id) / _TRACES_DIR / f"{job_id}.trace.json"

    def write_trace(
        self, run_id: str, job_id: str, trace: Mapping[str, Any]
    ) -> Path:
        """Persist one job's Chrome trace-event document."""
        path = self.trace_path(run_id, job_id)
        _dump(path, trace)
        return path

    def read_trace(self, run_id: str, job_id: str) -> dict[str, Any]:
        path = self.trace_path(run_id, job_id)
        if not path.exists():
            raise FileNotFoundError(
                f"no trace for job {job_id!r} in run {run_id!r} "
                f"(was the run observed with --trace?)"
            )
        return _load(path)

    def list_traces(self, run_id: str) -> list[str]:
        """Job ids with a stored trace document, sorted."""
        traces_dir = self.run_dir(run_id) / _TRACES_DIR
        if not traces_dir.is_dir():
            return []
        return sorted(
            p.name[: -len(".trace.json")]
            for p in traces_dir.glob("*.trace.json")
        )

    # -- checkpoint artifacts -----------------------------------------

    def checkpoint_path(self, cache_key: str) -> Path:
        """Where a resumable job persists its last good snapshot.

        Keyed by the job's content-addressed cache key, so identical
        submissions share one resume point and different configurations
        can never resume from each other's state.
        """
        return self.root / _CHECKPOINTS_DIR / f"{cache_key}{_CKPT_SUFFIX}"

    def discard_checkpoint(self, cache_key: str) -> bool:
        """Drop a job's persisted checkpoint; True if one existed."""
        try:
            self.checkpoint_path(cache_key).unlink()
            return True
        except FileNotFoundError:
            return False

    def list_checkpoints(self) -> list[str]:
        """Cache keys with a persisted checkpoint, sorted."""
        ckpt_dir = self.root / _CHECKPOINTS_DIR
        if not ckpt_dir.is_dir():
            return []
        return sorted(
            p.name[: -len(_CKPT_SUFFIX)]
            for p in ckpt_dir.glob(f"*{_CKPT_SUFFIX}")
        )

    # -- result cache --------------------------------------------------

    def _cache_path(self, cache_key: str) -> Path:
        return self.root / _CACHE_DIR / f"{cache_key}.json"

    def cache_get(self, cache_key: str) -> dict[str, Any] | None:
        path = self._cache_path(cache_key)
        if not path.exists():
            return None
        try:
            return _load(path)
        except (OSError, json.JSONDecodeError):
            return None  # a torn cache entry is a miss, not an error

    def cache_put(self, cache_key: str, record: Mapping[str, Any]) -> None:
        _dump(self._cache_path(cache_key), record)

    def invalidate(self, experiment_id: str) -> int:
        """Drop every cached record for one experiment id; return count."""
        cache_dir = self.root / _CACHE_DIR
        if not cache_dir.is_dir():
            return 0
        dropped = 0
        for path in cache_dir.glob("*.json"):
            try:
                record = _load(path)
            except (OSError, json.JSONDecodeError):
                continue
            if record.get("experiment_id") == experiment_id:
                path.unlink(missing_ok=True)
                dropped += 1
        return dropped

    def invalidate_all(self) -> int:
        cache_dir = self.root / _CACHE_DIR
        if not cache_dir.is_dir():
            return 0
        dropped = 0
        for path in cache_dir.glob("*.json"):
            path.unlink(missing_ok=True)
            dropped += 1
        return dropped

    # -- store pruning -------------------------------------------------

    def _referenced_cache_keys(self, run_ids: Iterator[str] | list[str]) -> set[str]:
        keys: set[str] = set()
        for run_id in run_ids:
            jobs_dir = self.run_dir(run_id) / _JOBS_DIR
            if not jobs_dir.is_dir():
                continue
            for path in jobs_dir.glob("*.json"):
                try:
                    record = _load(path)
                except (OSError, json.JSONDecodeError):
                    continue
                key = record.get("cache_key")
                if key:
                    keys.add(key)
        return keys

    def _referenced_tuned_keys(self, run_ids: Iterator[str] | list[str]) -> set[str]:
        """Tuned-artifact keys referenced by cache entries or kept runs.

        A record that ran under a tuned config carries the contributing
        artifact keys in ``record["tuned"]["keys"]`` — those artifacts
        explain a result that is still replayable, so gc keeps them.
        """
        keys: set[str] = set()
        paths: list[Path] = []
        cache_dir = self.root / _CACHE_DIR
        if cache_dir.is_dir():
            paths.extend(cache_dir.glob("*.json"))
        for run_id in run_ids:
            jobs_dir = self.run_dir(run_id) / _JOBS_DIR
            if jobs_dir.is_dir():
                paths.extend(jobs_dir.glob("*.json"))
        for path in paths:
            try:
                record = _load(path)
            except (OSError, json.JSONDecodeError):
                continue
            tuned = record.get("tuned") or {}
            keys.update(tuned.get("keys") or ())
        return keys

    def gc(
        self,
        *,
        keep_runs: int = 20,
        prune_cache: bool = False,
        prune_tuned: bool = False,
        prune_journal: bool = False,
        dry_run: bool = False,
    ) -> dict[str, int]:
        """Prune the store so a long-running service node doesn't fill
        its disk.  Returns what was (or with ``dry_run`` would be)
        removed.

        * all but the newest ``keep_runs`` run directories are deleted,
        * traces with no matching job record in the surviving runs are
          deleted (orphans of partially-written or hand-edited runs),
        * stale atomic-write temp files are deleted,
        * checkpoints whose cache key already has a successful cached
          record are deleted (the job finished; nothing will resume),
        * with ``prune_cache``, cache entries referenced by no surviving
          run are deleted too,
        * with ``prune_tuned``, tuned-config artifacts under
          ``runs/tuned/`` are deleted when they are *stale*: tuned
          against a different code tree AND referenced by no cache
          entry or surviving run record.  Artifacts matching the
          current code fingerprint are always kept — they are what the
          next run auto-loads.
        * with ``prune_journal``, compacted service WAL segments
          (``*.wal.settled``) are deleted.  Live ``*.wal`` segments are
          **never** touched — they may reference accepted jobs a
          restarted node still owes results for.  Stale worker
          heartbeat files whose job no live segment tracks go too.
        """
        if keep_runs < 0:
            raise ValueError("keep_runs must be >= 0")
        counts = {
            "runs_removed": 0,
            "orphan_traces_removed": 0,
            "tmp_files_removed": 0,
            "checkpoints_removed": 0,
            "cache_entries_removed": 0,
            "tuned_artifacts_removed": 0,
            "journal_segments_removed": 0,
            "heartbeats_removed": 0,
        }
        runs = self.list_runs()  # oldest first
        doomed = runs[: max(0, len(runs) - keep_runs)]
        kept = runs[len(doomed):]
        for run_id in doomed:
            counts["runs_removed"] += 1
            if not dry_run:
                shutil.rmtree(self.run_dir(run_id), ignore_errors=True)

        for run_id in kept:
            jobs_dir = self.run_dir(run_id) / _JOBS_DIR
            known = (
                {p.name[: -len(".json")] for p in jobs_dir.glob("*.json")}
                if jobs_dir.is_dir()
                else set()
            )
            for job_id in self.list_traces(run_id):
                if job_id not in known:
                    counts["orphan_traces_removed"] += 1
                    if not dry_run:
                        self.trace_path(run_id, job_id).unlink(missing_ok=True)

        if self.root.is_dir():
            for tmp in self.root.rglob("*.tmp"):
                counts["tmp_files_removed"] += 1
                if not dry_run:
                    tmp.unlink(missing_ok=True)

        for key in self.list_checkpoints():
            record = self.cache_get(key)
            if record is not None and record.get("status") == "ok":
                counts["checkpoints_removed"] += 1
                if not dry_run:
                    self.discard_checkpoint(key)

        if prune_cache:
            cache_dir = self.root / _CACHE_DIR
            if cache_dir.is_dir():
                referenced = self._referenced_cache_keys(kept)
                for path in cache_dir.glob("*.json"):
                    if path.name[: -len(".json")] not in referenced:
                        counts["cache_entries_removed"] += 1
                        if not dry_run:
                            path.unlink(missing_ok=True)

        if prune_tuned:
            from repro.harness.fingerprint import code_fingerprint
            from repro.tune.artifact import TunedStore

            tuned_store = TunedStore(self.root)
            if tuned_store.dir.is_dir():
                current = code_fingerprint()
                referenced = self._referenced_tuned_keys(kept)
                for key in tuned_store.list_keys():
                    artifact = tuned_store.load(key)
                    stale = (
                        artifact is None
                        or (
                            artifact.code_fingerprint != current
                            and key not in referenced
                        )
                    )
                    if stale:
                        counts["tuned_artifacts_removed"] += 1
                        if not dry_run:
                            tuned_store.delete(key)

        # -- service durability artifacts (WAL segments, heartbeats) --
        import warnings

        from repro.service.durability import JobJournal, journal_dir

        journal = JobJournal(journal_dir(self.root), fsync=False)
        unsettled_ids: set[str] = set()
        if journal.dir.is_dir():
            with warnings.catch_warnings():
                # replay warns on torn tails; gc is a read-only observer
                warnings.simplefilter("ignore", RuntimeWarning)
                unsettled_ids = set(journal.replay().unsettled)
        heartbeats_dir = self.root / "service" / "heartbeats"
        if heartbeats_dir.is_dir():
            for beat in heartbeats_dir.glob("*.hb"):
                # a live segment still tracks this job: its worker may
                # be running right now; leave the heartbeat alone
                if beat.name[: -len(".hb")] in unsettled_ids:
                    continue
                counts["heartbeats_removed"] += 1
                if not dry_run:
                    beat.unlink(missing_ok=True)
        if prune_journal:
            # only compacted segments: every job in them was settled or
            # re-journaled by a later boot, so nothing references them
            for segment in journal.settled_segments():
                counts["journal_segments_removed"] += 1
                if not dry_run:
                    segment.unlink(missing_ok=True)
        return counts
