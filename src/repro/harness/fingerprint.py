"""Content hash of the ``repro`` source tree.

The harness cache key is ``sha256({experiment id, params, code
fingerprint})``; the code fingerprint makes cached records
self-invalidating — edit any module under ``src/repro`` and every key
changes, so stale results can never be replayed against new code.
"""

from __future__ import annotations

import functools
import hashlib
from pathlib import Path

__all__ = ["code_fingerprint"]


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


@functools.lru_cache(maxsize=8)
def _fingerprint_of(root: str) -> str:
    digest = hashlib.sha256()
    for path in sorted(Path(root).rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(root).as_posix()
        digest.update(rel.encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def code_fingerprint(root: Path | str | None = None) -> str:
    """Hex digest over every ``*.py`` file under ``root``.

    Defaults to the installed ``repro`` package.  Deterministic across
    processes and machines (path-sorted, content-only — mtimes don't
    matter); memoized per process.
    """
    if root is None:
        root = _package_root()
    return _fingerprint_of(str(Path(root).resolve()))
