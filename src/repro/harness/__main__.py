"""``python -m repro.harness`` entry point."""

from __future__ import annotations

import sys

from repro.harness.cli import main

if __name__ == "__main__":
    sys.exit(main())
