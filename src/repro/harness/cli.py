"""``python -m repro.harness`` — the experiment-execution CLI.

Subcommands::

    run   [--quick] [--jobs N] [--only ID ...] [--skip ID ...]
          [--force-path NAME] [--fault-plan PLAN] [--timeout S]
          [--retries N] [--no-cache] [--invalidate ID ...]
          [--trace] [--counters] [--no-tuned] [--runs-dir DIR] [--list]
    tune  [--quick] [--only SCENARIO ...] [--budget N] [--repeats N]
          [--force-tune] [--counters] [--runs-dir DIR] [--list]
    list  [--runs-dir DIR]            # stored runs, oldest first
    show  RUN_ID [--render] [--runs-dir DIR]
    diff  RUN_A RUN_B [--runs-dir DIR]   # shape-band regressions
    gc    [--keep K] [--prune-cache] [--prune-tuned] [--prune-journal]
          [--dry-run] [--runs-dir DIR]
    quarantine  [list | release (KEY | --all)] [--runs-dir DIR]

``run`` exits non-zero when any job failed to finish or finished
outside its paper-shape bands; ``diff`` exits non-zero on regressions.
``tune`` searches each scenario's knob space with short measured
probes and persists the winning config under ``runs/tuned/``; later
``run``s auto-load matching configs (``--no-tuned`` opts out).
``gc`` keeps the newest K runs (default 20) and sweeps orphaned
traces, stale ``*.tmp`` files, and satisfied checkpoints; with
``--prune-cache`` it also drops cache entries no kept run references,
with ``--prune-tuned`` it drops tuned configs that are stale
(other code tree, referenced by nothing), and with ``--prune-journal``
it drops compacted service WAL segments (live segments are never
touched — they may carry jobs a restarted node still owes).
``quarantine`` inspects the service's poison ledger and releases
quarantined job content so it may run again.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Mapping

from repro.harness import api
from repro.harness.store import DEFAULT_RUNS_DIR, RunStore

__all__ = ["main"]


def _add_runs_dir(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--runs-dir",
        default=DEFAULT_RUNS_DIR,
        metavar="DIR",
        help=f"run-store root (default: ./{DEFAULT_RUNS_DIR})",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute the experiment roster")
    run.add_argument("--quick", action="store_true", help="small systems, short sweeps")
    run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1; 0 = inline in this process)",
    )
    run.add_argument("--only", action="append", default=[], metavar="ID",
                     help="run only this experiment id (repeatable)")
    run.add_argument("--skip", action="append", default=[], metavar="ID",
                     help="skip an experiment id (repeatable)")
    run.add_argument("--timeout", type=float, default=None, metavar="S",
                     help="per-job timeout in seconds (requires --jobs >= 1)")
    run.add_argument("--retries", type=int, default=0, metavar="N",
                     help="extra attempts per failed/timed-out job")
    run.add_argument("--backoff", type=float, default=0.25, metavar="S",
                     help="base retry backoff (doubles per attempt)")
    run.add_argument("--no-cache", action="store_true",
                     help="recompute everything; do not read or reuse the cache")
    run.add_argument("--invalidate", action="append", default=[], metavar="ID",
                     help="drop cached records for an experiment id first (repeatable)")
    run.add_argument("--trace", action="store_true",
                     help="observe every job: store Chrome trace-event JSON "
                     "under runs/<run_id>/traces/ and counters in results")
    run.add_argument("--counters", action="store_true",
                     help="observe every job and print its hardware-counter "
                     "summary (implied by --trace for collection)")
    run.add_argument("--list", action="store_true",
                     help="list experiment ids and descriptions, then exit")
    from repro.md.forcefield import available_backends

    run.add_argument("--force-path", default="all-pairs",
                     choices=available_backends(),
                     help="functional force engine for the fig9 sweep")
    from repro.vm.machine import EXEC_BACKENDS, EXEC_ENV_VAR

    run.add_argument("--vm-exec", default=None, choices=EXEC_BACKENDS,
                     help="VM execution backend for every device model (sets "
                     f"{EXEC_ENV_VAR} so worker processes inherit it; not "
                     "part of job cache keys — results are bit-identical)")
    run.add_argument("--fault-plan", default=None, metavar="PLAN",
                     help="fault plan for the chaos experiment: 'storm', "
                     "'none', or a path to a JSON plan file; ships through "
                     "job params, so it IS part of the cache key")
    run.add_argument("--replicas", type=int, default=None, metavar="R",
                     help="replica count for the ensemble experiment; ships "
                     "through job params, so it IS part of the cache key")
    run.add_argument("--tuned", action=argparse.BooleanOptionalAction,
                     default=True,
                     help="auto-load tuned configs from runs/tuned/ for "
                     "experiments with a matching artifact (default on; "
                     "--no-tuned runs everything at backend defaults)")
    _add_runs_dir(run)

    tune = sub.add_parser(
        "tune", help="search the knob space and persist tuned configs")
    tune.add_argument("--quick", action="store_true",
                      help="small probe systems, single-repeat timing")
    tune.add_argument("--only", action="append", default=[],
                      metavar="SCENARIO",
                      help="tune only this scenario id (repeatable)")
    tune.add_argument("--budget", type=int, default=16, metavar="N",
                      help="max probes per scenario, defaults baseline "
                      "included (default 16)")
    tune.add_argument("--repeats", type=int, default=2, metavar="N",
                      help="timed repetitions per wall-clock probe; best "
                      "is kept (default 2)")
    tune.add_argument("--force-tune", action="store_true",
                      help="re-search even when an artifact already "
                      "satisfies the scenario key")
    tune.add_argument("--counters", action="store_true",
                      help="collect and print the tune.* counter summary")
    tune.add_argument("--list", action="store_true",
                      help="list tuning scenarios and their knobs, then exit")
    _add_runs_dir(tune)

    lst = sub.add_parser("list", help="list stored runs")
    _add_runs_dir(lst)

    show = sub.add_parser("show", help="show one stored run")
    show.add_argument("run_id")
    show.add_argument("--render", action="store_true",
                      help="render each job's full result table")
    _add_runs_dir(show)

    diff = sub.add_parser("diff", help="compare two runs' shape checks")
    diff.add_argument("run_a")
    diff.add_argument("run_b")
    _add_runs_dir(diff)

    gc = sub.add_parser("gc", help="prune old runs and orphaned artifacts")
    gc.add_argument("--keep", type=int, default=20, metavar="K",
                    help="newest runs to keep (default 20)")
    gc.add_argument("--prune-cache", action="store_true",
                    help="also drop cache entries no kept run references")
    gc.add_argument("--prune-tuned", action="store_true",
                    help="also drop stale tuned configs (tuned against "
                    "another code tree and referenced by no kept record)")
    gc.add_argument("--prune-journal", action="store_true",
                    help="also drop compacted (.settled) service WAL "
                    "segments; live segments are never pruned")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be removed without removing it")
    _add_runs_dir(gc)

    quarantine = sub.add_parser(
        "quarantine", help="inspect/release the service poison ledger")
    _add_runs_dir(quarantine)  # bare `quarantine` defaults to list
    qsub = quarantine.add_subparsers(dest="quarantine_command")
    qlist = qsub.add_parser("list", help="show quarantined job content")
    _add_runs_dir(qlist)
    qrelease = qsub.add_parser(
        "release", help="forget a quarantined cache key so it may run again")
    qrelease.add_argument("cache_key", nargs="?", default=None,
                          help="cache key (prefix accepted if unambiguous)")
    qrelease.add_argument("--all", action="store_true",
                          help="release every quarantined key")
    _add_runs_dir(qrelease)
    return parser


def print_roster(out=None) -> None:
    """The ``--list`` listing: id + one-line description per experiment."""
    from repro.experiments.registry import EXPERIMENTS

    out = out if out is not None else sys.stdout
    width = max(len(spec.experiment_id) for spec in EXPERIMENTS)
    for spec in EXPERIMENTS:
        print(f"{spec.experiment_id:<{width}}  {spec.description}", file=out)


def _status_line(record: Mapping[str, Any]) -> str:
    status = record["status"]
    if status == "ok":
        bands = "bands ok" if record.get("all_passed") else "BANDS FAIL"
        status = f"ok, {bands}"
    cached = " (cached)" if record.get("cached") else ""
    return (
        f"[{record['job_id']}] {status}{cached} "
        f"— {record.get('wall_seconds', 0.0):.2f}s"
        f", attempt {record.get('attempts', 1)}"
    )


def _cmd_run(args: argparse.Namespace) -> int:
    if args.list:
        print_roster()
        return 0
    if args.vm_exec:
        # Env var (not a job param): worker processes inherit os.environ,
        # and cache keys stay byte-for-byte identical across backends —
        # the backends produce bit-identical results, so a cached record
        # computed under either one is valid for both.
        import os

        from repro.vm.machine import EXEC_ENV_VAR

        os.environ[EXEC_ENV_VAR] = args.vm_exec
    if args.replicas is not None and args.replicas < 1:
        print("error: --replicas must be >= 1", file=sys.stderr)
        return 2
    fault_plan = None
    if args.fault_plan is not None:
        from repro.faults import load_plan_arg

        try:
            fault_plan = load_plan_arg(args.fault_plan).to_dict()
        except (ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    observe = args.trace or args.counters
    try:
        jobs = api.jobs_from_registry(
            quick=args.quick,
            force_path=args.force_path,
            fault_plan=fault_plan,
            replicas=args.replicas,
            only=args.only or None,
            skip=args.skip,
            observe=observe,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    store = RunStore(args.runs_dir)
    if args.tuned:
        from repro.tune.artifact import TunedStore

        jobs = api.attach_tuned(
            jobs, tuned_store=TunedStore(args.runs_dir), quick=args.quick
        )
        for job in jobs:
            if job.tuned:
                print(
                    f"[{job.job_id}] tuned config "
                    f"{job.tuned['fingerprint'][:16]}… "
                    f"({len(job.tuned['values'])} knob(s))"
                )
    outcome = api.run_roster(
        jobs,
        store=store,
        max_workers=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        use_cache=not args.no_cache,
        invalidate=args.invalidate,
        run_meta={
            "quick": args.quick,
            "jobs": args.jobs,
            "force_path": args.force_path,
            "vm_exec": args.vm_exec,
            "fault_plan": args.fault_plan,
            "replicas": args.replicas,
            "only": args.only,
            "skip": args.skip,
            "trace": args.trace,
            "counters": args.counters,
            "tuned": args.tuned,
        },
        on_record=lambda record: print(_status_line(record), flush=True),
    )
    if args.counters:
        for record in outcome.records:
            counters = (record.get("result") or {}).get("counters") or {}
            if not counters:
                continue
            print(f"\n[{record['job_id']}] hardware counters:")
            width = max(len(name) for name in counters)
            for name in sorted(counters):
                print(f"  {name:<{width}}  {counters[name]:.6g}")
    if args.trace and outcome.run_id is not None:
        for job_id in store.list_traces(outcome.run_id):
            print(f"trace: {store.trace_path(outcome.run_id, job_id)}")
    m = outcome.manifest
    print(
        f"run {outcome.run_id}: {m['job_count']} job(s), "
        f"{m['cached_count']} cached, {m['not_ok_count']} did not finish, "
        f"{m['band_failure_count']} outside paper-shape bands "
        f"({m['wall_seconds_total']:.2f}s)"
    )
    return outcome.exit_code


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.tune.artifact import TunedStore
    from repro.tune.probe import SCENARIOS
    from repro.tune.search import tune_scenarios

    if args.list:
        width = max(len(s.scenario_id) for s in SCENARIOS)
        for s in SCENARIOS:
            print(
                f"{s.scenario_id:<{width}}  {s.experiment_id} on {s.device} "
                f"(n={s.n}, objective={s.objective}): {', '.join(s.knobs)}"
            )
        return 0
    known = {s.scenario_id for s in SCENARIOS}
    for sid in args.only:
        if sid not in known:
            print(
                f"error: unknown scenario {sid!r}; known: {sorted(known)}",
                file=sys.stderr,
            )
            return 2
    store = TunedStore(args.runs_dir)

    def report(scenario, outcome) -> None:
        art = outcome.artifact
        if outcome.cached:
            line = "cached artifact, 0 probes"
        else:
            line = f"{outcome.probes_run} probe(s), source={art.source}"
        winner = art.values or "(defaults)"
        print(
            f"[{scenario.scenario_id}] {line} — winner {winner} "
            f"({art.speedup:.2f}x over defaults)",
            flush=True,
        )

    def search() -> dict[str, Any]:
        return tune_scenarios(
            args.only or None,
            quick=args.quick,
            budget=args.budget,
            repeats=args.repeats,
            store=store,
            force=args.force_tune,
            on_outcome=report,
        )

    if args.counters:
        from repro.obs.context import collect

        with collect() as session:
            outcomes = search()
        counters = session.merged_counters()
        if counters:
            print("\ntuning counters:")
            width = max(len(name) for name in counters)
            for name in sorted(counters):
                print(f"  {name:<{width}}  {counters[name]:.6g}")
    else:
        outcomes = search()
    adopted = sum(
        1 for o in outcomes.values() if o.artifact.values and not o.cached
    )
    cached = sum(1 for o in outcomes.values() if o.cached)
    print(
        f"tuned {len(outcomes)} scenario(s): {adopted} new non-default "
        f"config(s), {cached} already tuned — artifacts under {store.dir}"
    )
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    store = RunStore(args.runs_dir)
    runs = store.list_runs()
    if not runs:
        print(f"no runs under {store.root}")
        return 0
    for run_id in runs:
        m = store.read_manifest(run_id)
        print(
            f"{run_id}  jobs={m['job_count']} cached={m['cached_count']} "
            f"failures={m['failures']}  {m['created']}"
        )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    store = RunStore(args.runs_dir)
    try:
        manifest = store.read_manifest(args.run_id)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"run {args.run_id}  created {manifest['created']}")
    print(f"code fingerprint {manifest['code_fingerprint'][:16]}…")
    for row in manifest["jobs"]:
        print("  " + _status_line(row))
    print(
        f"{manifest['failures']} failure(s) "
        f"({manifest['not_ok_count']} did not finish, "
        f"{manifest['band_failure_count']} outside bands)"
    )
    if args.render:
        from repro.experiments.common import ExperimentResult

        for record in store.iter_job_records(args.run_id):
            print()
            if record.get("result"):
                print(ExperimentResult.from_dict(record["result"]).render())
            else:
                print(f"[{record['job_id']}] {record['status']}")
                if record.get("traceback"):
                    print(record["traceback"])
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    store = RunStore(args.runs_dir)
    try:
        lines, regressions = api.diff_runs(store, args.run_a, args.run_b)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for line in lines:
        print(line)
    print(f"{regressions} regression(s)")
    return 1 if regressions else 0


def _cmd_gc(args: argparse.Namespace) -> int:
    store = RunStore(args.runs_dir)
    try:
        removed = store.gc(
            keep_runs=args.keep,
            prune_cache=args.prune_cache,
            prune_tuned=args.prune_tuned,
            prune_journal=args.prune_journal,
            dry_run=args.dry_run,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    verb = "would remove" if args.dry_run else "removed"
    print(
        f"{verb}: {removed['runs_removed']} run(s), "
        f"{removed['orphan_traces_removed']} orphan trace(s), "
        f"{removed['tmp_files_removed']} tmp file(s), "
        f"{removed['checkpoints_removed']} satisfied checkpoint(s), "
        f"{removed['cache_entries_removed']} unreferenced cache entr(ies), "
        f"{removed['tuned_artifacts_removed']} stale tuned artifact(s), "
        f"{removed['journal_segments_removed']} compacted journal "
        f"segment(s), {removed['heartbeats_removed']} stale heartbeat(s)"
    )
    return 0


def _cmd_quarantine(args: argparse.Namespace) -> int:
    from repro.service.durability import PoisonRegistry, poison_path

    registry = PoisonRegistry(poison_path(args.runs_dir))
    command = args.quarantine_command or "list"
    entries = registry.entries()
    quarantined = {
        key: entry for key, entry in sorted(entries.items())
        if entry.get("quarantined")
    }
    if command == "list":
        if not entries:
            print("poison ledger is empty")
            return 0
        for key, entry in sorted(entries.items()):
            state = "QUARANTINED" if entry.get("quarantined") else "watching"
            experiment = entry.get("experiment") or "?"
            print(
                f"{key[:16]}…  {state:<11}  {experiment:<12} "
                f"{int(entry.get('failures', 0))} failure(s)"
            )
        print(
            f"{len(entries)} key(s) tracked, {len(quarantined)} quarantined"
        )
        return 0
    # release
    if args.all:
        count = registry.release_all()
        print(f"released {count} key(s)")
        return 0
    if not args.cache_key:
        print("error: give a cache key (or --all)", file=sys.stderr)
        return 2
    matches = [k for k in entries if k.startswith(args.cache_key)]
    if not matches:
        print(f"error: no tracked key matches {args.cache_key!r}",
              file=sys.stderr)
        return 2
    if len(matches) > 1:
        print(
            f"error: {args.cache_key!r} is ambiguous "
            f"({len(matches)} matches)", file=sys.stderr,
        )
        return 2
    registry.release(matches[0])
    print(f"released {matches[0][:16]}…")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return {
        "run": _cmd_run,
        "tune": _cmd_tune,
        "list": _cmd_list,
        "show": _cmd_show,
        "diff": _cmd_diff,
        "gc": _cmd_gc,
        "quarantine": _cmd_quarantine,
    }[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
