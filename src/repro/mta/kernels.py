"""The MD kernel for the MTA-2: loop-nest IR + issue-slot accounting.

Two artifacts live here:

* the loop-IR description of the Figure-4 kernel, in the two source
  variants the paper compiled — the original (whose force loop the
  compiler refuses, Figure 8's "partially multithreaded" version) and
  the restructured one (reduction moved into the loop body + the
  ``assert parallel`` pragma, the "fully multithreaded" version);
* the instruction-issue model: the MTA-2 runs the same C source as the
  Opteron, so the issue stream is counted off the same scalar kernel
  program, with software divide/sqrt expanded to multi-issue sequences.
"""

from __future__ import annotations

from repro.mta.loopir import (
    PRAGMA_ASSERT_PARALLEL,
    ArrayRef,
    LoopNest,
    ScalarRef,
    Statement,
)
from repro.opteron.kernel import build_integration_program, build_opteron_kernel
from repro.vm.builder import Asm
from repro.vm.program import Node, Program, Segment

__all__ = [
    "MTA_ISSUE_SLOTS",
    "build_mta_pair_program",
    "build_mta_integration_program",
    "build_mta_timestep_program",
    "md_kernel_ir",
]

#: Software-sequence lengths for ops without single-instruction hardware
#: support on the MTA-2 (divide and sqrt expand to Newton iterations).
MTA_ISSUE_SLOTS: dict[str, float] = {
    "fdiv": 15.0,
    "fsqrt": 20.0,
}


def build_mta_pair_program(box_length: float) -> Program:
    """The per-pair force program (same C source as the Opteron port)."""
    return build_opteron_kernel(box_length)


def build_mta_integration_program() -> Program:
    """The O(N) integration program (steps 1/3/4/5)."""
    return build_integration_program()


def build_mta_timestep_program(box_length: float) -> Program:
    """The whole timestep as one two-segment program: force + integrate.

    The MTA-2 runs both phases from the same C source with no kernel
    relaunch between them, so the whole-timestep form is the natural
    unit for its issue accounting — and for the ``fused`` VM backend,
    where the integration consumes ``acc_out`` as an SSA value instead
    of re-reading the acceleration array.  Each batch row is one
    independent pair system, as in the SPE/GPU timestep kernels.
    """
    pair = build_opteron_kernel(box_length)
    a = Asm()
    integrate: list[Node] = [
        a.lqd("vel", "vel"),
        a.shufb("facc", "acc_out", "zero", (0, 1, 2, 4)),
        a.fm("dv", "facc", "dt"),
        a.fa("vel_s", "vel", "dv"),
        a.lqd("posn", "posn"),
        a.fm("dxv", "vel_s", "dt"),
        a.fa("posn_s", "posn", "dxv"),
        a.stqd("posn_s", "posn_s"),
        a.stqd("vel_s", "vel_s"),
    ]
    program = Program(
        name="mta_md_timestep",
        segments=(
            pair.segment("pair"),
            Segment("integrate", "atoms", tuple(integrate)),
        ),
        inputs=pair.inputs + ("vel", "posn", "dt", "zero"),
        outputs=("acc_out", "pe_out", "posn_s", "vel_s"),
    )
    program.validate()
    return program


def md_kernel_ir(fully_multithreaded: bool) -> tuple[LoopNest, ...]:
    """The Figure-4 kernel as loop nests for the compiler model.

    ``fully_multithreaded=False`` is the original source: the potential
    energy accumulates into a global scalar from inside the nested pair
    loop, which the compiler reports as a reduction dependence and
    serializes.  ``True`` is the paper's fix: a per-iteration partial
    sum is privatized, the global accumulation is a recognizable
    reduction directly in the loop body, and the pragma asserts
    parallelism.
    """
    x = lambda idx: ArrayRef("pos", (idx,))  # noqa: E731
    v = lambda idx: ArrayRef("vel", (idx,))  # noqa: E731
    acc = lambda idx: ArrayRef("acc", (idx,))  # noqa: E731

    advance_velocities = LoopNest(
        index="i",
        trips_key="atoms",
        label="step1_advance_velocities",
        body=(
            Statement(
                "v[i] += 0.5*dt*a[i]",
                reads=(v("i"), acc("i")),
                writes=(v("i"),),
            ),
        ),
    )

    if fully_multithreaded:
        force_body: tuple = (
            Statement("pe_local = 0", writes=(ScalarRef("pe_local"),)),
            LoopNest(
                index="j",
                trips_key="atoms",
                label="force_inner",
                body=(
                    Statement(
                        "acc[i] += f(x[i], x[j])",
                        reads=(x("i"), x("j"), acc("i")),
                        writes=(acc("i"),),
                    ),
                    Statement(
                        "pe_local += v(x[i], x[j])",
                        reads=(x("i"), x("j"), ScalarRef("pe_local")),
                        writes=(ScalarRef("pe_local"),),
                        is_reduction=True,
                    ),
                ),
            ),
            Statement(
                "pe += pe_local",
                reads=(ScalarRef("pe"), ScalarRef("pe_local")),
                writes=(ScalarRef("pe"),),
                is_reduction=True,
            ),
        )
        pragmas = frozenset({PRAGMA_ASSERT_PARALLEL})
    else:
        force_body = (
            LoopNest(
                index="j",
                trips_key="atoms",
                label="force_inner",
                body=(
                    Statement(
                        "acc[i] += f(x[i], x[j])",
                        reads=(x("i"), x("j"), acc("i")),
                        writes=(acc("i"),),
                    ),
                    Statement(
                        "pe += v(x[i], x[j])",
                        reads=(x("i"), x("j"), ScalarRef("pe")),
                        writes=(ScalarRef("pe"),),
                        is_reduction=True,
                    ),
                ),
            ),
        )
        pragmas = frozenset()

    force_loop = LoopNest(
        index="i",
        trips_key="atoms",
        label="step2_forces",
        body=force_body,
        pragmas=pragmas,
    )

    move_atoms = LoopNest(
        index="i",
        trips_key="atoms",
        label="step34_move_atoms",
        body=(
            Statement(
                "x[i] += dt*v[i]; v[i] += 0.5*dt*a[i]",
                reads=(x("i"), v("i"), acc("i")),
                writes=(x("i"), v("i")),
            ),
        ),
    )

    energies = LoopNest(
        index="i",
        trips_key="atoms",
        label="step5_energies",
        body=(
            Statement(
                "ke += 0.5*m*v[i]^2",
                reads=(ScalarRef("ke"), v("i")),
                writes=(ScalarRef("ke"),),
                is_reduction=True,
            ),
        ),
    )

    return (advance_velocities, force_loop, move_atoms, energies)
