"""The Cray XMT projection — the paper's "future plans" made concrete.

Section 3.3.1: the XMT "uses multithreaded processors similar to the
MTA-2, [but] there are several important differences in the memory and
network architecture; it will not have the MTA-2's nearly uniform
memory access latency, so data placement and access locality will be an
important consideration ...  The XMT multithreaded processors will
operate at a higher clock rate and the XMT design allows systems with
up to 8000 processors."

The model here captures exactly that contrast:

* compute side — the familiar stream model at the higher XMT clock;
* memory side — a 3D-torus network whose aggregate memory throughput
  grows with the *bisection* (~ P^(2/3)), not with P, so large systems
  become network-bound on memory-heavy kernels;
* the force-loop time is the roofline maximum of the two.

Memory intensity is *measured from the kernel's instruction stream*
(its load/store issue share), not assumed.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.arch import calibration as cal
from repro.arch.clock import Clock
from repro.arch.device import Device
from repro.arch.profilecounts import KernelMetrics
from repro.md.box import PeriodicBox
from repro.md.lj import LennardJones
from repro.md.simulation import MDConfig
from repro.mta.kernels import (
    MTA_ISSUE_SLOTS,
    build_mta_integration_program,
    build_mta_pair_program,
)
from repro.mta.streams import StreamModel
from repro.obs.observe import Observation
from repro.vm.isa import OPS
from repro.vm.program import Program
from repro.vm.schedule import count_issues

__all__ = ["XMTNetwork", "XMTDevice", "memory_reference_count"]

#: Issue-slot table that counts only memory references.
_MEMORY_SLOTS: dict[str, float] = {name: 0.0 for name in OPS}
_MEMORY_SLOTS.update({"lqd": 1.0, "stqd": 1.0, "texfetch": 1.0})


def memory_reference_count(program: Program, metrics: dict[str, float]) -> float:
    """Loads + stores the program issues over the given workload."""
    return count_issues(program, metrics, issue_slots=_MEMORY_SLOTS)


@dataclasses.dataclass(frozen=True)
class XMTNetwork:
    """Aggregate memory throughput of the XMT's 3D torus.

    Per-processor injection caps small systems; the bisection term
    (~ P^(2/3) links across the machine's midplane) caps large ones.
    Coefficients are chosen so the crossover sits near 64 processors —
    consistent with the XMT's published words-per-cycle budgets and,
    more importantly, producing the qualitative regime change the paper
    warns about.
    """

    injection_words_per_cycle: float = 0.5
    bisection_coefficient: float = 2.0

    def __post_init__(self) -> None:
        if self.injection_words_per_cycle <= 0:
            raise ValueError("injection rate must be positive")
        if self.bisection_coefficient <= 0:
            raise ValueError("bisection coefficient must be positive")

    def aggregate_words_per_cycle(self, n_processors: int) -> float:
        """Sustained remote-memory words per cycle, machine-wide."""
        if n_processors < 1:
            raise ValueError("n_processors must be >= 1")
        injection_bound = self.injection_words_per_cycle * n_processors
        bisection_bound = self.bisection_coefficient * n_processors ** (2.0 / 3.0)
        return min(injection_bound, bisection_bound)

    def crossover_processors(self) -> float:
        """Processor count where the bisection starts binding."""
        return (
            self.bisection_coefficient / self.injection_words_per_cycle
        ) ** 3.0


class XMTDevice(Device):
    """An XMT partition running the fully-multithreaded MD kernel.

    ``uniform_memory=True`` disables the network roofline, recovering an
    MTA-2-like flat machine at XMT clocks — the comparison point that
    isolates what the paper's locality warning costs.
    """

    precision = "float64"

    def __init__(
        self,
        n_processors: int = 1,
        network: XMTNetwork | None = None,
        uniform_memory: bool = False,
        clock_hz: float = cal.XMT_CLOCK_HZ,
        force_path: str = "all-pairs",
    ) -> None:
        if n_processors < 1 or n_processors > cal.XMT_MAX_PROCESSORS:
            raise ValueError(
                f"n_processors must be in [1, {cal.XMT_MAX_PROCESSORS}]"
            )
        self.n_processors = n_processors
        self.network = network or XMTNetwork()
        self.uniform_memory = uniform_memory
        memory_tag = "uniform" if uniform_memory else "torus"
        self.name = f"xmt-{n_processors}p-{memory_tag}"
        self.clock = Clock(clock_hz, "xmt")
        self.streams = StreamModel(n_processors=n_processors, clock=self.clock)
        self.force_path = force_path
        self._program_cache: dict[float, object] = {}

    def prepare(self, config: MDConfig) -> None:
        self._box_length = config.make_box().length

    def force_backend(self, sim_box: PeriodicBox, potential: LennardJones):
        return self.functional_backend(sim_box, potential)

    def branch_probabilities(self, config: MDConfig) -> dict[str, float]:
        return {"reflect_take": 0.04}

    def _pair_program(self, box_length: float):
        key = round(box_length, 12)
        if key not in self._program_cache:
            self._program_cache[key] = build_mta_pair_program(box_length)
        return self._program_cache[key]

    def memory_seconds(self, mem_refs: float) -> float:
        """Time for the network to deliver ``mem_refs`` remote words."""
        if mem_refs < 0:
            raise ValueError("mem_refs must be non-negative")
        rate = self.network.aggregate_words_per_cycle(self.n_processors)
        return self.clock.seconds(mem_refs / rate)

    def projected_step_seconds(
        self,
        n_atoms: int,
        interacting_fraction: float,
        box_length: float,
    ) -> dict[str, float]:
        """Analytic projection for workloads too large to run functionally.

        The per-pair instruction stream is exact (it comes from the
        scheduled kernel program); only the interacting fraction must be
        supplied, measured at a feasible size — it is intensive
        (density-determined), so reusing it at larger N is sound.  This
        is how the paper-style "up to 8000 processors" projections are
        produced without 10^10-pair functional runs.
        """
        metrics = KernelMetrics(
            n_atoms=n_atoms,
            pairs_examined=float(n_atoms) * (n_atoms - 1),
            interacting_fraction=interacting_fraction,
            branch_probabilities={"reflect_take": 0.04},
        )
        self._box_length = box_length
        return self.step_seconds(metrics, step_index=0)

    def step_seconds(
        self, metrics: KernelMetrics, step_index: int
    ) -> dict[str, float]:
        program = self._pair_program(self._box_length)
        metric_map = metrics.as_dict()
        issues = count_issues(program, metric_map, issue_slots=MTA_ISSUE_SLOTS)
        compute = self.streams.parallel_seconds(
            issues, concurrent_threads=float(metrics.n_atoms)
        )
        if self.uniform_memory:
            network_wait = 0.0
        else:
            memory = self.memory_seconds(
                memory_reference_count(program, metric_map)
            )
            # roofline: the force phase takes max(compute, memory);
            # report the exposed network share separately
            network_wait = max(0.0, memory - compute)
        integ_issues = count_issues(
            build_mta_integration_program(),
            metric_map,
            issue_slots=MTA_ISSUE_SLOTS,
        )
        integ_seconds = self.streams.parallel_seconds(
            integ_issues, concurrent_threads=float(metrics.n_atoms)
        )
        return {
            "force_loop": compute,
            "network_wait": network_wait,
            "integration": integ_seconds,
        }

    def observe_step(
        self,
        obs: Observation,
        metrics: KernelMetrics,
        parts: dict[str, float],
        step_index: int,
    ) -> None:
        metric_map = metrics.as_dict()
        issues = count_issues(
            self._pair_program(self._box_length),
            metric_map,
            issue_slots=MTA_ISSUE_SLOTS,
        )
        integ_issues = count_issues(
            build_mta_integration_program(),
            metric_map,
            issue_slots=MTA_ISSUE_SLOTS,
        )
        obs.charge_many({
            "mta.issues.parallel": issues + integ_issues,
            "mta.issues.total": issues + integ_issues,
            "mta.streams.concurrent": metrics.n_atoms,
            "mta.streams.slots": self.streams.n_streams * self.n_processors,
        })
        obs.sample(
            "mta.stream.utilization",
            {"utilization": self.streams.utilization(float(metrics.n_atoms))},
        )
        # One aggregate "streams" lane (the XMT scales to thousands of
        # processors — per-processor lanes would be unreadable) plus a
        # "network" lane for the exposed torus wait.
        force = parts.get("force_loop", 0.0)
        network = parts.get("network_wait", 0.0)
        integ = parts.get("integration", 0.0)
        if force > 0.0:
            obs.span_at("force_loop", "streams", 0.0, force,
                        args={"step": step_index})
        if network > 0.0:
            obs.span_at("network_wait", "network", force, network,
                        args={"step": step_index})
        if integ > 0.0:
            obs.span_at("integration", "streams", force + network, integ,
                        args={"step": step_index})
