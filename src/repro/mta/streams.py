"""MTA-2 stream-saturation timing model.

"The key to obtaining high performance on the MTA-2 is to keep its
processors saturated, so that each processor always has a thread whose
next instruction can be executed" (section 3.3.1).  A saturated
processor issues one instruction per cycle; a serial region is limited
to one stream, which can issue only once the previous instruction has
drained the pipeline — one issue per ~21 cycles.
"""

from __future__ import annotations

import dataclasses

from repro.arch import calibration as cal
from repro.arch.clock import Clock
from repro.tune.spec import TunableSpec, register_tunable

__all__ = ["StreamModel"]

# How many hardware streams the runtime requests per processor.  The
# MTA's 128 streams exist to cover memory latency at full saturation;
# a workload with fewer concurrent threads than streams never saturates
# (utilization = threads / (streams x processors)), so requesting only
# as many streams as the workload can fill raises the achieved issue
# rate.  Purely a runtime resource request — the physics, executed on
# the host, is untouched.
register_tunable(TunableSpec(
    name="mta.streams",
    backend="mta",
    kind="int",
    default=cal.MTA_N_STREAMS,
    candidates=(16, 32, 64, cal.MTA_N_STREAMS, 2 * cal.MTA_N_STREAMS),
    low=1,
    high=1024,
    description="hardware streams requested per MTA processor",
    effect="fewer streams saturate at lower thread counts (faster "
           "small-N parallel regions); more streams help only when the "
           "workload can fill them",
))


@dataclasses.dataclass(frozen=True)
class StreamModel:
    """Issue-rate model for one or more MTA processors."""

    n_processors: int = 1
    n_streams: int = cal.MTA_N_STREAMS
    serial_issue_gap: int = cal.MTA_SERIAL_ISSUE_GAP_CYCLES
    clock: Clock = dataclasses.field(
        default_factory=lambda: Clock(cal.MTA_CLOCK_HZ, "mta")
    )

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise ValueError("n_processors must be >= 1")
        if self.n_streams < 1:
            raise ValueError("n_streams must be >= 1")
        if self.serial_issue_gap < 1:
            raise ValueError("serial_issue_gap must be >= 1")

    def utilization(self, concurrent_threads: float) -> float:
        """Fraction of peak issue rate achieved with this much parallelism.

        Saturation needs ``n_streams`` ready threads per processor (the
        streams exist to cover memory latency, which is deeper than the
        instruction pipeline); below that the issue rate is
        thread-limited and scales linearly.
        """
        if concurrent_threads <= 0:
            raise ValueError("concurrent_threads must be positive")
        needed = self.n_streams * self.n_processors
        return min(1.0, concurrent_threads / needed)

    def parallel_seconds(self, issues: float, concurrent_threads: float) -> float:
        """Seconds to retire ``issues`` instruction issues in a parallel region."""
        if issues < 0:
            raise ValueError("issues must be non-negative")
        rate = (
            self.n_processors
            * cal.MTA_ISSUE_PER_CYCLE
            * self.utilization(concurrent_threads)
        )
        return self.clock.seconds(issues / rate)

    def serial_seconds(self, issues: float) -> float:
        """Seconds to retire ``issues`` issues on one stream (serial code)."""
        if issues < 0:
            raise ValueError("issues must be non-negative")
        return self.clock.seconds(issues * self.serial_issue_gap)

    def stall_recovery_seconds(self, issues_per_thread: float) -> float:
        """Penalty for one stream stalled on a blocked memory word.

        The runtime notices the stuck stream, re-issues its block of
        iterations, and the re-run proceeds at the *serial* rate — the
        saturation that hid its latency is busy with everyone else's
        work.
        """
        if issues_per_thread < 0:
            raise ValueError("issues_per_thread must be non-negative")
        return self.serial_seconds(issues_per_thread)

    def starvation_seconds(
        self, saturated_seconds: float, severity: float
    ) -> float:
        """Extra time when the ready-thread pool drops below saturation.

        ``severity`` is the fraction of the step's streams lost to
        starvation; the region's issue rate falls to ``1 - severity`` of
        peak, so the extra time is ``t * severity / (1 - severity)``.
        """
        if not 0.0 <= severity < 1.0:
            raise ValueError(f"severity must be in [0, 1), got {severity}")
        if saturated_seconds < 0.0:
            raise ValueError("saturated_seconds must be non-negative")
        return saturated_seconds * severity / (1.0 - severity)
