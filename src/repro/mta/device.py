"""The Cray MTA-2 device model (paper section 5.3).

The MTA runs the whole kernel itself (nothing is offloaded), in double
precision.  The compiler model decides per-loop parallelism from the
loop IR; the timing model charges each kernel phase at the saturated
issue rate (parallel loops) or the single-stream rate (loops the
compiler refused).  The memory system is uniform-latency by design —
"there is no penalty for accessing atoms ... in an irregular fashion" —
so, unlike the Opteron model, there is no cache term at all: runtime
grows exactly with the instruction count.  That contrast is Figure 9.
"""

from __future__ import annotations

import numpy as np

from repro.arch import calibration as cal
from repro.arch.device import Device
from repro.arch.profilecounts import KernelMetrics
from repro.md.box import PeriodicBox
from repro.md.lj import LennardJones
from repro.md.simulation import MDConfig
from repro.mta.compiler import CompilationReport, compile_nest
from repro.mta.fullempty import SynchronizedReduction
from repro.mta.kernels import (
    MTA_ISSUE_SLOTS,
    build_mta_integration_program,
    build_mta_pair_program,
    md_kernel_ir,
)
from repro.mta.streams import StreamModel
from repro.obs.observe import Observation
from repro.vm.schedule import count_issues

__all__ = ["MTADevice"]

#: Same geometry-determined branch probability as the Opteron port.
_DEFAULT_REFLECT_TAKE = 0.04


class MTADevice(Device):
    """One or more MTA-2 (or XMT-projected) multithreaded processors."""

    precision = "float64"
    tune_family = "mta"

    def __init__(
        self,
        fully_multithreaded: bool = True,
        n_processors: int = 1,
        clock_hz: float = cal.MTA_CLOCK_HZ,
        reflect_take: float = _DEFAULT_REFLECT_TAKE,
        force_path: str = "all-pairs",
        n_streams: int | None = None,
    ) -> None:
        mode = "fully" if fully_multithreaded else "partially"
        self.name = f"mta2-{mode}-multithreaded-{n_processors}p"
        self.fully_multithreaded = fully_multithreaded
        self.reflect_take = reflect_take
        self.force_path = force_path
        from repro.arch.clock import Clock

        if n_streams is None:
            from repro.tune.context import tuned_value

            tuned = tuned_value("mta.streams", self.tune_family)
            n_streams = int(tuned) if tuned is not None else cal.MTA_N_STREAMS
        self.streams = StreamModel(
            n_processors=n_processors,
            n_streams=n_streams,
            clock=Clock(clock_hz, "mta"),
        )
        self.compilation: CompilationReport = compile_nest(
            *md_kernel_ir(fully_multithreaded)
        )
        self._program_cache: dict[float, object] = {}

    def prepare(self, config: MDConfig) -> None:
        self._box_length = config.make_box().length

    def force_backend(self, sim_box: PeriodicBox, potential: LennardJones):
        return self.functional_backend(sim_box, potential)

    def branch_probabilities(self, config: MDConfig) -> dict[str, float]:
        return {"reflect_take": self.reflect_take}

    def _pair_program(self, box_length: float):
        key = round(box_length, 12)
        if key not in self._program_cache:
            self._program_cache[key] = build_mta_pair_program(box_length)
        return self._program_cache[key]

    def step_seconds(
        self, metrics: KernelMetrics, step_index: int
    ) -> dict[str, float]:
        pair_program = self._pair_program(self._box_length)
        pair_issues = count_issues(
            pair_program, metrics.as_dict(), issue_slots=MTA_ISSUE_SLOTS
        )
        integ_issues = count_issues(
            build_mta_integration_program(),
            metrics.as_dict(),
            issue_slots=MTA_ISSUE_SLOTS,
        )
        force_loop = self.compilation.loop("step2_forces")
        if force_loop.parallel:
            force_seconds = self.streams.parallel_seconds(
                pair_issues, concurrent_threads=float(metrics.n_atoms)
            )
            # the per-iteration PE partials combine through one
            # full/empty-synchronized word: a serialized update chain
            reduction = SynchronizedReduction()
            reduction_seconds = self.streams.serial_seconds(
                reduction.critical_path_issues(metrics.n_atoms)
            )
        else:
            # the serial loop already folds PE inline; no extra chain
            force_seconds = self.streams.serial_seconds(pair_issues)
            reduction_seconds = 0.0
        # Steps 1/3/4/5 auto-parallelize in both source variants.
        integ_seconds = self.streams.parallel_seconds(
            integ_issues, concurrent_threads=float(metrics.n_atoms)
        )
        session = self.fault_session
        if session is not None:
            # A stalled stream's block re-issues at the serial rate.
            per_thread = pair_issues / max(1.0, float(metrics.n_atoms))
            session.charge(session.transient(
                "mta.stream.stall",
                lambda decision: self.streams.stall_recovery_seconds(per_thread),
                detection="stream-heartbeat",
                action="stalled stream's block re-issued",
            ))
            # Starvation: the force region runs below saturation until
            # the runtime tops the ready pool back up.
            session.charge(session.transient(
                "mta.stream.starve",
                lambda decision: self.streams.starvation_seconds(
                    force_seconds,
                    float(decision.payload.get("severity", 0.25)),
                ),
                detection="utilization-counter",
                action="runtime re-saturated the stream pool",
            ))
        return {
            "force_loop": force_seconds,
            "pe_reduction": reduction_seconds,
            "integration": integ_seconds,
        }

    def observe_step(
        self,
        obs: Observation,
        metrics: KernelMetrics,
        parts: dict[str, float],
        step_index: int,
    ) -> None:
        metric_map = metrics.as_dict()
        pair_issues = count_issues(
            self._pair_program(self._box_length),
            metric_map,
            issue_slots=MTA_ISSUE_SLOTS,
        )
        integ_issues = count_issues(
            build_mta_integration_program(),
            metric_map,
            issue_slots=MTA_ISSUE_SLOTS,
        )
        if self.compilation.loop("step2_forces").parallel:
            parallel = pair_issues + integ_issues
            serial = SynchronizedReduction().critical_path_issues(
                metrics.n_atoms
            )
            obs.charge("mta.fullempty.updates", metrics.n_atoms)
        else:
            parallel = integ_issues
            serial = pair_issues
        obs.charge_many({
            "mta.issues.parallel": parallel,
            "mta.issues.serial": serial,
            "mta.issues.total": parallel + serial,
            "mta.streams.concurrent": metrics.n_atoms,
            "mta.streams.slots": self.streams.n_streams
            * self.streams.n_processors,
        })
        obs.sample(
            "mta.stream.utilization",
            {"utilization": self.streams.utilization(float(metrics.n_atoms))},
        )
        # Timeline: every processor works the force loop and the
        # integration; the full/empty PE combination serializes between
        # them on its own "sync" lane.
        force = parts.get("force_loop", 0.0)
        reduction = parts.get("pe_reduction", 0.0)
        integ = parts.get("integration", 0.0)
        recovery = parts.get("fault_recovery", 0.0)
        for proc in range(self.streams.n_processors):
            lane = f"proc{proc}"
            if force > 0.0:
                obs.span_at("force_loop", lane, 0.0, force,
                            args={"step": step_index})
            if integ > 0.0:
                obs.span_at("integration", lane, force + reduction, integ,
                            args={"step": step_index})
        if reduction > 0.0:
            obs.span_at("pe_reduction", "sync", force, reduction,
                        args={"step": step_index})
        if recovery > 0.0:
            obs.span_at("fault_recovery", "sync",
                        force + reduction + integ, recovery,
                        args={"step": step_index})
