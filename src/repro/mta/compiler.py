"""Dependence analysis: which loops does the MTA compiler parallelize?

The analysis answers one question per loop: can distinct iterations run
concurrently?  The rules mirror what the Cray MTA-2 compiler actually
does on code like the MD kernel:

* an array written at subscripts containing the loop index is private
  per iteration — fine;
* an array written at subscripts *not* containing the loop index is a
  cross-iteration conflict — serialize;
* a scalar that is read and written is a loop-carried dependence.  The
  compiler rewrites it only when it appears as a recognizable reduction
  statement *directly* in the loop body; a reduction buried inside a
  nested loop defeats the recognizer — exactly the paper's experience
  ("it found a dependency on the reduction operation");
* ``#pragma mta assert parallel`` overrides the analysis entirely.

This is an intentionally conservative may-dependence analysis (no index
arithmetic, no aliasing proofs) — which is also what makes it faithful:
the real compiler gave up on the same loop for the same reason.
"""

from __future__ import annotations

import dataclasses

from repro.mta.loopir import (
    PRAGMA_ASSERT_PARALLEL,
    ArrayRef,
    LoopNest,
    ScalarRef,
    Statement,
)

__all__ = ["LoopReport", "CompilationReport", "analyze_loop", "compile_nest"]


@dataclasses.dataclass(frozen=True)
class LoopReport:
    """The verdict for one loop."""

    index: str
    label: str
    parallel: bool
    reasons: tuple[str, ...]
    via_pragma: bool = False
    recognized_reductions: tuple[str, ...] = ()


@dataclasses.dataclass(frozen=True)
class CompilationReport:
    """Verdicts for a whole nest, outermost first."""

    loops: tuple[LoopReport, ...]

    def loop(self, label: str) -> LoopReport:
        for report in self.loops:
            if report.label == label:
                return report
        raise KeyError(f"no loop labelled {label!r}")

    @property
    def all_parallel(self) -> bool:
        return all(report.parallel for report in self.loops)


def _scalar_conflicts(loop: LoopNest) -> tuple[list[str], list[str]]:
    """Return (blocking scalar names, recognized reduction names)."""
    direct_stmts = loop.direct_statements()
    direct_reductions = {
        w.name
        for stmt in direct_stmts
        if stmt.is_reduction
        for w in stmt.writes
        if isinstance(w, ScalarRef)
    }
    # A scalar initialized (written without being read) directly in the
    # body is privatizable: each iteration gets its own copy.
    privatized = {
        w.name
        for stmt in direct_stmts
        for w in stmt.writes
        if isinstance(w, ScalarRef)
        and not any(
            isinstance(r, ScalarRef) and r.name == w.name for r in stmt.reads
        )
    }
    blocking: list[str] = []
    recognized: list[str] = []
    for stmt in loop.statements():
        direct = stmt in direct_stmts
        for written in stmt.writes:
            if not isinstance(written, ScalarRef):
                continue
            if written.name in privatized:
                continue
            reads_it = any(
                isinstance(r, ScalarRef) and r.name == written.name
                for r in stmt.reads
            )
            if not reads_it:
                continue
            if direct and stmt.is_reduction and written.name in direct_reductions:
                recognized.append(written.name)
            else:
                blocking.append(written.name)
    return blocking, sorted(set(recognized))


def _array_conflicts(loop: LoopNest) -> list[str]:
    conflicts: list[str] = []
    for stmt in loop.statements():
        for written in stmt.writes:
            if isinstance(written, ArrayRef) and loop.index not in written.index:
                conflicts.append(str(written))
    return conflicts


def analyze_loop(loop: LoopNest) -> LoopReport:
    """Classify one loop (ignoring its nested loops' own parallelism)."""
    if PRAGMA_ASSERT_PARALLEL in loop.pragmas:
        return LoopReport(
            index=loop.index,
            label=loop.label,
            parallel=True,
            reasons=(f"#pragma {PRAGMA_ASSERT_PARALLEL}",),
            via_pragma=True,
        )
    reasons: list[str] = []
    blocking_scalars, recognized = _scalar_conflicts(loop)
    for name in sorted(set(blocking_scalars)):
        reasons.append(f"loop-carried dependence on reduction variable {name!r}")
    for ref in sorted(set(_array_conflicts(loop))):
        reasons.append(f"cross-iteration write to {ref}")
    return LoopReport(
        index=loop.index,
        label=loop.label,
        parallel=not reasons,
        reasons=tuple(reasons),
        recognized_reductions=tuple(recognized),
    )


def compile_nest(*loops: LoopNest) -> CompilationReport:
    """Analyze each top-level loop of a kernel."""
    return CompilationReport(loops=tuple(analyze_loop(loop) for loop in loops))
