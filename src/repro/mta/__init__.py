"""The Cray MTA-2 model: loop IR, parallelizing compiler, stream timing."""

from repro.mta.compiler import (
    CompilationReport,
    LoopReport,
    analyze_loop,
    compile_nest,
)
from repro.mta.device import MTADevice
from repro.mta.kernels import (
    MTA_ISSUE_SLOTS,
    build_mta_integration_program,
    build_mta_pair_program,
    md_kernel_ir,
)
from repro.mta.loopir import (
    PRAGMA_ASSERT_PARALLEL,
    ArrayRef,
    LoopNest,
    ScalarRef,
    Statement,
)
from repro.mta.fullempty import (
    FullEmptyArray,
    FullEmptyError,
    FullEmptyWord,
    SynchronizedReduction,
)
from repro.mta.streams import StreamModel
from repro.mta.xmt import XMTDevice, XMTNetwork, memory_reference_count

__all__ = [
    "ArrayRef",
    "FullEmptyArray",
    "FullEmptyError",
    "FullEmptyWord",
    "SynchronizedReduction",
    "XMTDevice",
    "XMTNetwork",
    "memory_reference_count",
    "CompilationReport",
    "LoopNest",
    "LoopReport",
    "MTADevice",
    "MTA_ISSUE_SLOTS",
    "PRAGMA_ASSERT_PARALLEL",
    "ScalarRef",
    "Statement",
    "StreamModel",
    "analyze_loop",
    "build_mta_integration_program",
    "build_mta_pair_program",
    "compile_nest",
    "md_kernel_ir",
]
