"""Full/empty-bit synchronized memory — the MTA's signature primitive.

Every MTA memory word carries a full/empty tag; loads and stores can
wait on and toggle it, giving word-granularity producer/consumer
synchronization without locks.  The paper's related work highlights it
("the implementation relies extensively on the use of full/empty bits
in MTA-2 memory to facilitate parallel execution", Bokhari & Sauer),
and the restructured fully-multithreaded force loop needs it for the
final potential-energy combination across threads.

This module provides a functional model (:class:`FullEmptyWord`,
:class:`FullEmptyArray`) with deadlock detection for single-threaded
use, plus :class:`SynchronizedReduction`, which both *computes* a
reduction and *prices* it: concurrent ``readfe``/``writeef`` updates of
one word serialize, so the cost model charges the retry chain.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = [
    "FullEmptyError",
    "FullEmptyWord",
    "FullEmptyArray",
    "SynchronizedReduction",
]

#: Issue slots per synchronized memory operation (tag check + retry
#: machinery); a handful of instructions on real hardware.
SYNC_OP_ISSUES = 4.0


class FullEmptyError(RuntimeError):
    """Raised when an operation would deadlock in single-threaded use."""


@dataclasses.dataclass
class FullEmptyWord:
    """One tagged memory word."""

    value: float = 0.0
    full: bool = False

    def writeef(self, value: float) -> None:
        """Wait-for-empty, write, set full.

        In this single-threaded functional model a write to a full word
        can never be satisfied — no other stream will empty it — so it
        raises instead of hanging.
        """
        if self.full:
            raise FullEmptyError("writeef on a full word would deadlock")
        self.value = value
        self.full = True

    def readfe(self) -> float:
        """Wait-for-full, read, set empty."""
        if not self.full:
            raise FullEmptyError("readfe on an empty word would deadlock")
        self.full = False
        return self.value

    def readff(self) -> float:
        """Wait-for-full, read, leave full."""
        if not self.full:
            raise FullEmptyError("readff on an empty word would deadlock")
        return self.value

    def write_unconditional(self, value: float) -> None:
        """Plain store: sets the value and marks the word full."""
        self.value = value
        self.full = True


class FullEmptyArray:
    """A vector of tagged words with the same operation set."""

    def __init__(self, n: int, fill: float = 0.0, full: bool = False) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.values = np.full(n, fill, dtype=np.float64)
        self.tags = np.full(n, full, dtype=bool)

    def __len__(self) -> int:
        return self.values.size

    def writeef(self, index: int, value: float) -> None:
        if self.tags[index]:
            raise FullEmptyError(f"writeef on full word {index}")
        self.values[index] = value
        self.tags[index] = True

    def readfe(self, index: int) -> float:
        if not self.tags[index]:
            raise FullEmptyError(f"readfe on empty word {index}")
        self.tags[index] = False
        return float(self.values[index])

    def full_count(self) -> int:
        return int(np.count_nonzero(self.tags))


@dataclasses.dataclass
class SynchronizedReduction:
    """A global accumulator updated through readfe/writeef pairs.

    ``add_all`` simulates ``n_threads`` concurrent streams each folding
    one contribution into the shared word.  Functionally that is a plain
    sum; for timing, the updates serialize on the word's tag, so the
    critical path is ``n x (readfe + add + writeef)`` issues regardless
    of how many streams run — which is why real MTA code keeps such
    words per-iteration-private and reduces once (the restructuring the
    paper applied).
    """

    word: FullEmptyWord = dataclasses.field(default_factory=FullEmptyWord)
    serialized_issues: float = 0.0

    def __post_init__(self) -> None:
        if not self.word.full:
            self.word.write_unconditional(0.0)

    def add_all(self, contributions: np.ndarray) -> float:
        """Fold all contributions in; returns the new total."""
        contributions = np.asarray(contributions, dtype=np.float64)
        for value in contributions.ravel():
            current = self.word.readfe()
            self.word.writeef(current + float(value))
        self.serialized_issues += contributions.size * (2 * SYNC_OP_ISSUES + 1)
        return self.word.readff()

    def critical_path_issues(self, n_contributions: int) -> float:
        """Issue slots on the serialized update chain."""
        if n_contributions < 0:
            raise ValueError("n_contributions must be non-negative")
        return n_contributions * (2 * SYNC_OP_ISSUES + 1)
