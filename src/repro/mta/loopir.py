"""A miniature loop-nest IR for the MTA compiler model.

The MTA-2 extracts its parallelism from loops the compiler can prove
independent (section 3.3.1).  To reproduce the paper's compilation
story mechanically — "the most time consuming part ... was not
automatically parallelized by the MTA compiler because it found a
dependency on the reduction operation" — the MD kernel is described in
this IR and handed to :mod:`repro.mta.compiler` for dependence analysis.

The IR is deliberately small: statements carry explicit read/write sets
of scalar and array references; loops carry an index name, a symbolic
trip count, optional pragmas, and a body of statements and nested loops.
"""

from __future__ import annotations

import dataclasses
from typing import Union

__all__ = ["ArrayRef", "ScalarRef", "Statement", "LoopNest", "PRAGMA_ASSERT_PARALLEL"]

#: The directive the paper used: "we hinted the compiler using an MTA
#: directive that the loop has no dependencies".
PRAGMA_ASSERT_PARALLEL = "mta assert parallel"


@dataclasses.dataclass(frozen=True)
class ArrayRef:
    """A subscripted reference like ``acc[i]``; ``index`` names the
    subscript expression's loop indices, e.g. ``("i",)`` or ``("i", "j")``."""

    name: str
    index: tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.name}[{','.join(self.index)}]"


@dataclasses.dataclass(frozen=True)
class ScalarRef:
    """An unsubscripted variable like the potential-energy accumulator."""

    name: str

    def __str__(self) -> str:
        return self.name


Ref = Union[ArrayRef, ScalarRef]


@dataclasses.dataclass(frozen=True)
class Statement:
    """One statement with its data-access summary.

    ``is_reduction`` marks a statement of the recognizable form
    ``s = s op expr`` for an associative op — the only loop-carried
    scalar pattern the compiler model will rewrite on its own, and only
    when the statement sits directly in the loop being parallelized.
    """

    label: str
    reads: tuple[Ref, ...] = ()
    writes: tuple[Ref, ...] = ()
    is_reduction: bool = False

    def __post_init__(self) -> None:
        if self.is_reduction:
            scalar_writes = [w for w in self.writes if isinstance(w, ScalarRef)]
            if not scalar_writes:
                raise ValueError(
                    f"reduction statement {self.label!r} must write a scalar"
                )


Node = Union[Statement, "LoopNest"]


@dataclasses.dataclass(frozen=True)
class LoopNest:
    """A counted loop over ``index`` with symbolic trip count ``trips_key``."""

    index: str
    trips_key: str
    body: tuple[Node, ...]
    pragmas: frozenset[str] = frozenset()
    label: str = ""

    def statements(self) -> list[Statement]:
        """All statements in this loop, including nested ones."""
        found: list[Statement] = []
        stack: list[Node] = list(self.body)
        while stack:
            node = stack.pop()
            if isinstance(node, Statement):
                found.append(node)
            else:
                stack.extend(node.body)
        return found

    def direct_statements(self) -> list[Statement]:
        """Statements directly in this loop body (not inside nested loops)."""
        return [node for node in self.body if isinstance(node, Statement)]

    def nested_loops(self) -> list["LoopNest"]:
        return [node for node in self.body if isinstance(node, LoopNest)]
